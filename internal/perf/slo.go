package perf

import (
	"encoding/json"
	"fmt"
	"os"
)

// SLO declarations over a committed benchmark trajectory. A spec file
// (scripts/slo.json) names scenarios from a BENCH_*.json report and
// bounds the three numbers the harness measures; Evaluate turns a
// report + spec into a list of violations. scripts/slo_gate.sh runs the
// evaluation in CI so a perf regression fails the build with the exact
// number that moved, instead of rotting silently in the trajectory
// file.

// SLO bounds one named scenario. Zero-valued bounds are not enforced;
// MaxAllocsPerOp is a pointer so an explicit 0 (a zero-allocation
// contract) stays distinguishable from "not bounded".
type SLO struct {
	// Name is the scenario's Result.Name in the report.
	Name string `json:"name"`
	// MinQPS is the throughput floor.
	MinQPS float64 `json:"min_qps,omitempty"`
	// MaxP99Micros is the tail-latency ceiling, in microseconds.
	MaxP99Micros float64 `json:"max_p99_us,omitempty"`
	// MaxAllocsPerOp is the allocation-rate ceiling (nil: unbounded).
	MaxAllocsPerOp *float64 `json:"max_allocs_per_op,omitempty"`
}

// SLOSpec is the slo.json file shape.
type SLOSpec struct {
	// Note documents the spec's calibration policy for future editors.
	Note string `json:"note,omitempty"`
	SLOs []SLO  `json:"slos"`
}

// Violation is one broken bound, phrased for a CI log.
type Violation struct {
	// Name is the scenario that broke its bound.
	Name string `json:"name"`
	// Reason states the measured value against the bound.
	Reason string `json:"reason"`
}

func (v Violation) String() string { return v.Name + ": " + v.Reason }

// Evaluate checks every SLO in the spec against the report. A scenario
// the report does not contain is itself a violation — a gate that
// silently skips a renamed or dropped benchmark guards nothing.
func (s *SLOSpec) Evaluate(r *Report) []Violation {
	var out []Violation
	add := func(name, format string, args ...any) {
		out = append(out, Violation{Name: name, Reason: fmt.Sprintf(format, args...)})
	}
	for _, slo := range s.SLOs {
		res, ok := r.Find(slo.Name)
		if !ok {
			add(slo.Name, "scenario missing from report %q", r.Label)
			continue
		}
		if slo.MinQPS > 0 && res.QPS < slo.MinQPS {
			add(slo.Name, "qps %.0f below floor %.0f", res.QPS, slo.MinQPS)
		}
		if slo.MaxP99Micros > 0 && res.P99Micros > slo.MaxP99Micros {
			add(slo.Name, "p99 %.1fus above ceiling %.1fus", res.P99Micros, slo.MaxP99Micros)
		}
		if slo.MaxAllocsPerOp != nil && res.AllocsPerOp > *slo.MaxAllocsPerOp {
			add(slo.Name, "allocs/op %.3f above ceiling %.3f", res.AllocsPerOp, *slo.MaxAllocsPerOp)
		}
	}
	return out
}

// ParseSLOSpec decodes a spec and rejects the shapes that would make
// the gate vacuous (no SLOs, an unnamed SLO, an SLO with no bounds).
func ParseSLOSpec(data []byte) (*SLOSpec, error) {
	var s SLOSpec
	if err := json.Unmarshal(data, &s); err != nil {
		return nil, fmt.Errorf("perf: parsing SLO spec: %w", err)
	}
	if len(s.SLOs) == 0 {
		return nil, fmt.Errorf("perf: SLO spec declares no SLOs")
	}
	for i, slo := range s.SLOs {
		if slo.Name == "" {
			return nil, fmt.Errorf("perf: SLO %d names no scenario", i)
		}
		if slo.MinQPS <= 0 && slo.MaxP99Micros <= 0 && slo.MaxAllocsPerOp == nil {
			return nil, fmt.Errorf("perf: SLO %q sets no bounds", slo.Name)
		}
	}
	return &s, nil
}

// ReadSLOSpec loads and validates a spec file.
func ReadSLOSpec(path string) (*SLOSpec, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return ParseSLOSpec(data)
}

// ReadReport loads a committed BENCH_*.json trajectory point.
func ReadReport(path string) (*Report, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var r Report
	if err := json.Unmarshal(data, &r); err != nil {
		return nil, fmt.Errorf("perf: parsing report %s: %w", path, err)
	}
	return &r, nil
}
