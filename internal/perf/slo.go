package perf

import (
	"encoding/json"
	"fmt"
	"os"
)

// SLO declarations over a committed benchmark trajectory. A spec file
// (scripts/slo.json) names scenarios from a BENCH_*.json report and
// bounds the three numbers the harness measures; Evaluate turns a
// report + spec into a list of violations. scripts/slo_gate.sh runs the
// evaluation in CI so a perf regression fails the build with the exact
// number that moved, instead of rotting silently in the trajectory
// file.

// SLO bounds one named scenario. Zero-valued bounds are not enforced;
// MaxAllocsPerOp is a pointer so an explicit 0 (a zero-allocation
// contract) stays distinguishable from "not bounded".
//
// The two ratio bounds relate scenarios *within one report*, which is
// what makes them machine-independent: "the batch path must beat the
// single-vector path 4x" or "binary recovery must cost at most half a
// JSON re-index" holds on a fast laptop and a throttled CI runner
// alike, where any absolute floor would be calibrated for only one.
type SLO struct {
	// Name is the scenario's Result.Name in the report.
	Name string `json:"name"`
	// MinQPS is the throughput floor.
	MinQPS float64 `json:"min_qps,omitempty"`
	// MaxP99Micros is the tail-latency ceiling, in microseconds.
	MaxP99Micros float64 `json:"max_p99_us,omitempty"`
	// MaxAllocsPerOp is the allocation-rate ceiling (nil: unbounded).
	MaxAllocsPerOp *float64 `json:"max_allocs_per_op,omitempty"`
	// MinQPSRatio, with QPSRatioOf, is a relative throughput floor: this
	// scenario's QPS must be at least MinQPSRatio times the QPS of the
	// QPSRatioOf scenario from the same report.
	MinQPSRatio float64 `json:"min_qps_ratio,omitempty"`
	QPSRatioOf  string  `json:"qps_ratio_of,omitempty"`
	// MaxP50Ratio, with P50RatioOf, is a relative latency ceiling: this
	// scenario's median must be at most MaxP50Ratio times the median of
	// the P50RatioOf scenario from the same report.
	MaxP50Ratio float64 `json:"max_p50_ratio,omitempty"`
	P50RatioOf  string  `json:"p50_ratio_of,omitempty"`
}

// SLOSpec is the slo.json file shape.
type SLOSpec struct {
	// Note documents the spec's calibration policy for future editors.
	Note string `json:"note,omitempty"`
	SLOs []SLO  `json:"slos"`
}

// Violation is one broken bound, phrased for a CI log.
type Violation struct {
	// Name is the scenario that broke its bound.
	Name string `json:"name"`
	// Reason states the measured value against the bound.
	Reason string `json:"reason"`
}

func (v Violation) String() string { return v.Name + ": " + v.Reason }

// Evaluate checks every SLO in the spec against the report. A scenario
// the report does not contain is itself a violation — a gate that
// silently skips a renamed or dropped benchmark guards nothing.
func (s *SLOSpec) Evaluate(r *Report) []Violation {
	var out []Violation
	add := func(name, format string, args ...any) {
		out = append(out, Violation{Name: name, Reason: fmt.Sprintf(format, args...)})
	}
	for _, slo := range s.SLOs {
		res, ok := r.Find(slo.Name)
		if !ok {
			add(slo.Name, "scenario missing from report %q", r.Label)
			continue
		}
		if slo.MinQPS > 0 && res.QPS < slo.MinQPS {
			add(slo.Name, "qps %.0f below floor %.0f", res.QPS, slo.MinQPS)
		}
		if slo.MaxP99Micros > 0 && res.P99Micros > slo.MaxP99Micros {
			add(slo.Name, "p99 %.1fus above ceiling %.1fus", res.P99Micros, slo.MaxP99Micros)
		}
		if slo.MaxAllocsPerOp != nil && res.AllocsPerOp > *slo.MaxAllocsPerOp {
			add(slo.Name, "allocs/op %.3f above ceiling %.3f", res.AllocsPerOp, *slo.MaxAllocsPerOp)
		}
		if slo.MinQPSRatio > 0 {
			base, ok := r.Find(slo.QPSRatioOf)
			switch {
			case !ok:
				add(slo.Name, "ratio baseline %q missing from report %q", slo.QPSRatioOf, r.Label)
			case res.QPS < slo.MinQPSRatio*base.QPS:
				add(slo.Name, "qps %.0f is %.2fx of %s (%.0f), below floor %.2fx",
					res.QPS, res.QPS/base.QPS, slo.QPSRatioOf, base.QPS, slo.MinQPSRatio)
			}
		}
		if slo.MaxP50Ratio > 0 {
			base, ok := r.Find(slo.P50RatioOf)
			switch {
			case !ok:
				add(slo.Name, "ratio baseline %q missing from report %q", slo.P50RatioOf, r.Label)
			case res.P50Micros > slo.MaxP50Ratio*base.P50Micros:
				add(slo.Name, "p50 %.1fus is %.2fx of %s (%.1fus), above ceiling %.2fx",
					res.P50Micros, res.P50Micros/base.P50Micros, slo.P50RatioOf, base.P50Micros, slo.MaxP50Ratio)
			}
		}
	}
	return out
}

// ParseSLOSpec decodes a spec and rejects the shapes that would make
// the gate vacuous (no SLOs, an unnamed SLO, an SLO with no bounds).
func ParseSLOSpec(data []byte) (*SLOSpec, error) {
	var s SLOSpec
	if err := json.Unmarshal(data, &s); err != nil {
		return nil, fmt.Errorf("perf: parsing SLO spec: %w", err)
	}
	if len(s.SLOs) == 0 {
		return nil, fmt.Errorf("perf: SLO spec declares no SLOs")
	}
	for i, slo := range s.SLOs {
		if slo.Name == "" {
			return nil, fmt.Errorf("perf: SLO %d names no scenario", i)
		}
		if (slo.MinQPSRatio > 0) != (slo.QPSRatioOf != "") {
			return nil, fmt.Errorf("perf: SLO %q needs both min_qps_ratio and qps_ratio_of", slo.Name)
		}
		if (slo.MaxP50Ratio > 0) != (slo.P50RatioOf != "") {
			return nil, fmt.Errorf("perf: SLO %q needs both max_p50_ratio and p50_ratio_of", slo.Name)
		}
		if slo.MinQPS <= 0 && slo.MaxP99Micros <= 0 && slo.MaxAllocsPerOp == nil &&
			slo.MinQPSRatio <= 0 && slo.MaxP50Ratio <= 0 {
			return nil, fmt.Errorf("perf: SLO %q sets no bounds", slo.Name)
		}
	}
	return &s, nil
}

// ReadSLOSpec loads and validates a spec file.
func ReadSLOSpec(path string) (*SLOSpec, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return ParseSLOSpec(data)
}

// ReadReport loads a committed BENCH_*.json trajectory point.
func ReadReport(path string) (*Report, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var r Report
	if err := json.Unmarshal(data, &r); err != nil {
		return nil, fmt.Errorf("perf: parsing report %s: %w", path, err)
	}
	return &r, nil
}
