package query

import (
	"testing"
)

// FuzzCanonicalizeEquivalence drives random predicate soups through
// Canonicalize and checks box semantics against direct matching.
func FuzzCanonicalizeEquivalence(f *testing.F) {
	f.Add([]byte{0, 1, 3, 2, 4, 5}, []byte{1, 2, 3})
	f.Add([]byte{}, []byte{0, 0})
	f.Add([]byte{9, 200, 7}, []byte{255})
	f.Fuzz(func(t *testing.T, predBytes, tupleBytes []byte) {
		if len(tupleBytes) == 0 || len(tupleBytes) > 6 {
			return
		}
		m := len(tupleBytes)
		domains := make([]Interval, m)
		for i := range domains {
			domains[i] = Interval{Lo: 0, Hi: 15}
		}
		tuple := make([]int, m)
		for i, b := range tupleBytes {
			tuple[i] = int(b % 16)
		}
		var q Q
		for i := 0; i+2 < len(predBytes) && len(q) < 8; i += 3 {
			q = append(q, Predicate{
				Attr:  int(predBytes[i]) % m,
				Op:    Op(predBytes[i+1] % 5),
				Value: int(predBytes[i+2] % 16),
			})
		}
		box := q.Canonicalize(domains)
		if q.Matches(tuple) != box.Contains(tuple) {
			t.Fatalf("q=%v tuple=%v: Matches=%v box=%v", q, tuple, q.Matches(tuple), box)
		}
		norm := q.Normalize(domains)
		if norm.Matches(tuple) != q.Matches(tuple) {
			t.Fatalf("normalize changed semantics: %v vs %v on %v", q, norm, tuple)
		}
	})
}
