package query

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestOpString(t *testing.T) {
	cases := map[Op]string{LT: "<", LE: "<=", EQ: "=", GE: ">=", GT: ">"}
	for op, want := range cases {
		if op.String() != want {
			t.Errorf("%v: got %q want %q", int(op), op.String(), want)
		}
		if !op.Valid() {
			t.Errorf("%q should be valid", want)
		}
	}
	if Op(99).Valid() {
		t.Error("Op(99) should be invalid")
	}
	if !strings.Contains(Op(99).String(), "99") {
		t.Error("invalid op should print its value")
	}
}

func TestPredicateMatches(t *testing.T) {
	for _, tc := range []struct {
		p    Predicate
		v    int
		want bool
	}{
		{Predicate{0, LT, 5}, 4, true},
		{Predicate{0, LT, 5}, 5, false},
		{Predicate{0, LE, 5}, 5, true},
		{Predicate{0, LE, 5}, 6, false},
		{Predicate{0, EQ, 5}, 5, true},
		{Predicate{0, EQ, 5}, 4, false},
		{Predicate{0, GE, 5}, 5, true},
		{Predicate{0, GE, 5}, 4, false},
		{Predicate{0, GT, 5}, 6, true},
		{Predicate{0, GT, 5}, 5, false},
	} {
		if got := tc.p.Matches(tc.v); got != tc.want {
			t.Errorf("%v matches %d: got %v", tc.p, tc.v, got)
		}
	}
	if (Predicate{0, Op(99), 5}).Matches(5) {
		t.Error("invalid op should match nothing")
	}
}

func TestQMatches(t *testing.T) {
	q := Q{{Attr: 0, Op: LT, Value: 5}, {Attr: 1, Op: GE, Value: 2}}
	if !q.Matches([]int{4, 2}) {
		t.Error("4,2 should match")
	}
	if q.Matches([]int{5, 2}) || q.Matches([]int{4, 1}) {
		t.Error("bound violations should not match")
	}
	if (Q{{Attr: 3, Op: LT, Value: 1}}).Matches([]int{0, 0}) {
		t.Error("out-of-range attribute should not match")
	}
	if !(Q(nil)).Matches([]int{1, 2, 3}) {
		t.Error("SELECT * matches everything")
	}
}

func TestWithDoesNotMutate(t *testing.T) {
	q := Q{{Attr: 0, Op: LT, Value: 5}}
	q2 := q.With(Predicate{Attr: 1, Op: EQ, Value: 3})
	q3 := q.With(Predicate{Attr: 2, Op: GT, Value: 1})
	if len(q) != 1 || len(q2) != 2 || len(q3) != 2 {
		t.Fatalf("lengths: %d %d %d", len(q), len(q2), len(q3))
	}
	if q2[1].Attr != 1 || q3[1].Attr != 2 {
		t.Error("appended predicates interfered (shared backing array)")
	}
	q4 := q.WithAll(Predicate{Attr: 1, Op: EQ, Value: 3}, Predicate{Attr: 2, Op: EQ, Value: 4})
	if len(q4) != 3 || len(q) != 1 {
		t.Error("WithAll mutated receiver")
	}
}

func TestString(t *testing.T) {
	if got := (Q(nil)).String(); got != "SELECT *" {
		t.Errorf("nil query prints %q", got)
	}
	q := Q{{Attr: 0, Op: LT, Value: 5}, {Attr: 2, Op: GE, Value: 1}}
	want := "WHERE A0 < 5 AND A2 >= 1"
	if got := q.String(); got != want {
		t.Errorf("got %q want %q", got, want)
	}
}

func TestIntervals(t *testing.T) {
	iv := Interval{2, 5}
	if iv.Empty() || iv.Len() != 4 || !iv.Contains(2) || !iv.Contains(5) || iv.Contains(6) {
		t.Errorf("interval basics broken: %+v", iv)
	}
	empty := Interval{3, 2}
	if !empty.Empty() || empty.Len() != 0 {
		t.Error("empty interval misreported")
	}
	got := iv.Intersect(Interval{4, 9})
	if got != (Interval{4, 5}) {
		t.Errorf("intersect: %+v", got)
	}
	if !iv.Intersect(Interval{6, 9}).Empty() {
		t.Error("disjoint intersect should be empty")
	}
}

func TestCanonicalize(t *testing.T) {
	domains := []Interval{{0, 9}, {0, 9}, {0, 9}}
	q := Q{
		{Attr: 0, Op: LT, Value: 5},
		{Attr: 0, Op: GE, Value: 2},
		{Attr: 1, Op: EQ, Value: 7},
		{Attr: 2, Op: LE, Value: 8},
		{Attr: 2, Op: GT, Value: 3},
		{Attr: 0, Op: LT, Value: 4}, // tighter duplicate
	}
	b := q.Canonicalize(domains)
	if b.Dims[0] != (Interval{2, 3}) {
		t.Errorf("dim0: %+v", b.Dims[0])
	}
	if b.Dims[1] != (Interval{7, 7}) {
		t.Errorf("dim1: %+v", b.Dims[1])
	}
	if b.Dims[2] != (Interval{4, 8}) {
		t.Errorf("dim2: %+v", b.Dims[2])
	}
	if b.Empty() {
		t.Error("box should be non-empty")
	}
	if !(Q{{Attr: 0, Op: LT, Value: 0}}).Canonicalize(domains).Empty() {
		t.Error("A0 < 0 should be empty over [0,9]")
	}
}

// Property: a query and its canonical box agree on every tuple.
func TestCanonicalizeEquivalentToMatches(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	domains := []Interval{{0, 7}, {0, 7}, {0, 7}}
	ops := []Op{LT, LE, EQ, GE, GT}
	for trial := 0; trial < 2000; trial++ {
		var q Q
		for p := 0; p < rng.Intn(5); p++ {
			q = append(q, Predicate{
				Attr:  rng.Intn(3),
				Op:    ops[rng.Intn(len(ops))],
				Value: rng.Intn(8),
			})
		}
		box := q.Canonicalize(domains)
		tuple := []int{rng.Intn(8), rng.Intn(8), rng.Intn(8)}
		if q.Matches(tuple) != box.Contains(tuple) {
			t.Fatalf("q=%v tuple=%v: Matches=%v Contains=%v", q, tuple, q.Matches(tuple), box.Contains(tuple))
		}
	}
}

// Property: Normalize preserves semantics and uses at most two predicates
// per attribute.
func TestNormalize(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	domains := []Interval{{0, 7}, {0, 7}}
	ops := []Op{LT, LE, EQ, GE, GT}
	for trial := 0; trial < 1000; trial++ {
		var q Q
		for p := 0; p < rng.Intn(6); p++ {
			q = append(q, Predicate{Attr: rng.Intn(2), Op: ops[rng.Intn(len(ops))], Value: rng.Intn(8)})
		}
		norm := q.Normalize(domains)
		perAttr := map[int]int{}
		for _, p := range norm {
			perAttr[p.Attr]++
		}
		for a, c := range perAttr {
			if c > 2 {
				t.Fatalf("attribute %d has %d predicates after normalize: %v", a, c, norm)
			}
		}
		for probe := 0; probe < 30; probe++ {
			tuple := []int{rng.Intn(8), rng.Intn(8)}
			if q.Matches(tuple) != norm.Matches(tuple) {
				t.Fatalf("normalize changed semantics: %v vs %v on %v", q, norm, tuple)
			}
		}
	}
}

func TestUsesOnly(t *testing.T) {
	q := Q{{Attr: 0, Op: LT, Value: 3}, {Attr: 1, Op: EQ, Value: 2}}
	if !q.UsesOnly(LT, EQ) {
		t.Error("LT+EQ query rejected")
	}
	if q.UsesOnly(EQ) {
		t.Error("LT predicate should fail EQ-only check")
	}
}

func TestCloneIndependence(t *testing.T) {
	f := func(attr uint8, val int16) bool {
		q := Q{{Attr: int(attr % 4), Op: LE, Value: int(val)}}
		c := q.Clone()
		c[0].Value++
		return q[0].Value == int(val)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
	if Q(nil).Clone() != nil {
		t.Error("nil clone should stay nil")
	}
}

func TestParse(t *testing.T) {
	q, err := Parse("A0<5, a2>=3 , A1 = 7")
	if err != nil {
		t.Fatal(err)
	}
	want := Q{
		{Attr: 0, Op: LT, Value: 5},
		{Attr: 2, Op: GE, Value: 3},
		{Attr: 1, Op: EQ, Value: 7},
	}
	if len(q) != len(want) {
		t.Fatalf("parsed %v", q)
	}
	for i := range want {
		if q[i] != want[i] {
			t.Fatalf("predicate %d: %v, want %v", i, q[i], want[i])
		}
	}
	if q2, err := Parse("A0<=5"); err != nil || q2[0].Op != LE {
		t.Fatalf("<= parsing: %v %v", q2, err)
	}
	if q2, err := Parse("A0==5"); err != nil || q2[0].Op != EQ {
		t.Fatalf("== parsing: %v %v", q2, err)
	}
	if q2, err := Parse("A0>9"); err != nil || q2[0].Op != GT {
		t.Fatalf("> parsing: %v %v", q2, err)
	}
	if empty, err := Parse("  "); err != nil || empty != nil {
		t.Fatalf("blank parse: %v %v", empty, err)
	}
	for _, bad := range []string{"A0", "B1<2", "A-1<2", "A0<x", "A0<", "<5", ","} {
		if _, err := Parse(bad); err == nil {
			t.Errorf("%q parsed", bad)
		}
	}
}

func TestMustParse(t *testing.T) {
	if len(MustParse("A0<3")) != 1 {
		t.Fatal("MustParse broken")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("MustParse should panic on junk")
		}
	}()
	MustParse("junk")
}

// Property: every predicate round-trips through its printed form.
func TestParsePrintRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	ops := []Op{LT, LE, EQ, GE, GT}
	for trial := 0; trial < 500; trial++ {
		var q Q
		for i := 0; i < 1+rng.Intn(4); i++ {
			q = append(q, Predicate{Attr: rng.Intn(6), Op: ops[rng.Intn(5)], Value: rng.Intn(200) - 100})
		}
		parts := make([]string, len(q))
		for i, p := range q {
			parts[i] = fmt.Sprintf("A%d%s%d", p.Attr, p.Op, p.Value)
		}
		back, err := Parse(strings.Join(parts, ","))
		if err != nil {
			t.Fatalf("round trip of %v: %v", q, err)
		}
		for i := range q {
			if back[i] != q[i] {
				t.Fatalf("round trip changed %v to %v", q[i], back[i])
			}
		}
	}
}
