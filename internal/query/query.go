// Package query defines the conjunctive-predicate query model used by both
// the hidden-database simulator and the skyline-discovery algorithms.
//
// A query is a conjunction of per-attribute predicates over integer-coded
// ordinal attributes. Throughout the module, smaller values rank higher
// (are preferred), matching the paper's convention that vi ranks higher
// than vj if vi < vj.
package query

import (
	"fmt"
	"sort"
	"strings"
)

// Op is a comparison operator usable in a predicate.
type Op uint8

// Supported comparison operators.
const (
	LT Op = iota // attribute <  value
	LE           // attribute <= value
	EQ           // attribute =  value
	GE           // attribute >= value
	GT           // attribute >  value
)

// String returns the SQL-ish spelling of the operator.
func (op Op) String() string {
	switch op {
	case LT:
		return "<"
	case LE:
		return "<="
	case EQ:
		return "="
	case GE:
		return ">="
	case GT:
		return ">"
	}
	return fmt.Sprintf("Op(%d)", uint8(op))
}

// Valid reports whether op is one of the defined operators.
func (op Op) Valid() bool { return op <= GT }

// Predicate is a single comparison on one ranking attribute.
type Predicate struct {
	Attr  int // attribute index in [0, m)
	Op    Op
	Value int
}

// String renders the predicate as "A3 <= 42".
func (p Predicate) String() string {
	return fmt.Sprintf("A%d %s %d", p.Attr, p.Op, p.Value)
}

// Matches reports whether attribute value v satisfies the predicate.
func (p Predicate) Matches(v int) bool {
	switch p.Op {
	case LT:
		return v < p.Value
	case LE:
		return v <= p.Value
	case EQ:
		return v == p.Value
	case GE:
		return v >= p.Value
	case GT:
		return v > p.Value
	}
	return false
}

// Q is a conjunctive query: all predicates must hold. The zero value (nil)
// is the unrestricted SELECT * query.
type Q []Predicate

// Matches reports whether the tuple (a slice of attribute values indexed by
// attribute) satisfies every predicate in the query.
func (q Q) Matches(tuple []int) bool {
	for _, p := range q {
		if p.Attr < 0 || p.Attr >= len(tuple) {
			return false
		}
		if !p.Matches(tuple[p.Attr]) {
			return false
		}
	}
	return true
}

// With returns a new query that appends predicate p to q, leaving q intact.
func (q Q) With(p Predicate) Q {
	out := make(Q, len(q), len(q)+1)
	copy(out, q)
	return append(out, p)
}

// WithAll returns a new query appending every predicate in ps.
func (q Q) WithAll(ps ...Predicate) Q {
	out := make(Q, len(q), len(q)+len(ps))
	copy(out, q)
	return append(out, ps...)
}

// Clone returns a deep copy of the query.
func (q Q) Clone() Q {
	if q == nil {
		return nil
	}
	out := make(Q, len(q))
	copy(out, q)
	return out
}

// String renders the query as a WHERE clause, or "SELECT *" when empty.
func (q Q) String() string {
	if len(q) == 0 {
		return "SELECT *"
	}
	parts := make([]string, len(q))
	for i, p := range q {
		parts[i] = p.String()
	}
	return "WHERE " + strings.Join(parts, " AND ")
}

// Interval is a closed integer interval [Lo, Hi]. An empty interval has
// Lo > Hi.
type Interval struct {
	Lo, Hi int
}

// Empty reports whether the interval contains no integers.
func (iv Interval) Empty() bool { return iv.Lo > iv.Hi }

// Len returns the number of integers in the interval (0 when empty).
func (iv Interval) Len() int {
	if iv.Empty() {
		return 0
	}
	return iv.Hi - iv.Lo + 1
}

// Contains reports whether v lies inside the interval.
func (iv Interval) Contains(v int) bool { return v >= iv.Lo && v <= iv.Hi }

// Intersect returns the intersection of two intervals.
func (iv Interval) Intersect(o Interval) Interval {
	lo, hi := iv.Lo, iv.Hi
	if o.Lo > lo {
		lo = o.Lo
	}
	if o.Hi < hi {
		hi = o.Hi
	}
	return Interval{lo, hi}
}

// Box is the per-attribute interval representation of a canonical
// conjunctive query: attribute i must fall in Dims[i].
type Box struct {
	Dims []Interval
}

// NewBox returns the unrestricted box over m attributes with the given
// per-attribute domains.
func NewBox(domains []Interval) Box {
	dims := make([]Interval, len(domains))
	copy(dims, domains)
	return Box{Dims: dims}
}

// Empty reports whether any dimension of the box is empty.
func (b Box) Empty() bool {
	for _, iv := range b.Dims {
		if iv.Empty() {
			return true
		}
	}
	return false
}

// Contains reports whether the tuple lies inside the box.
func (b Box) Contains(tuple []int) bool {
	if len(tuple) < len(b.Dims) {
		return false
	}
	for i, iv := range b.Dims {
		if !iv.Contains(tuple[i]) {
			return false
		}
	}
	return true
}

// Clone deep-copies the box.
func (b Box) Clone() Box {
	dims := make([]Interval, len(b.Dims))
	copy(dims, b.Dims)
	return Box{Dims: dims}
}

// Canonicalize reduces a conjunctive query to a box given the attribute
// domains: multiple predicates on the same attribute intersect. The box is
// exactly equivalent to the query for integer-valued attributes.
func (q Q) Canonicalize(domains []Interval) Box {
	return q.CanonicalizeInto(nil, domains)
}

// CanonicalizeInto is Canonicalize writing the box dimensions into dst
// (grown only beyond its capacity), so hot paths that canonicalize per
// lookup — the query cache's key derivation — can reuse one scratch
// slice instead of allocating a box every time. The returned box aliases
// dst.
func (q Q) CanonicalizeInto(dst []Interval, domains []Interval) Box {
	if cap(dst) < len(domains) {
		dst = make([]Interval, len(domains))
	} else {
		dst = dst[:len(domains)]
	}
	copy(dst, domains)
	b := Box{Dims: dst}
	for _, p := range q {
		if p.Attr < 0 || p.Attr >= len(b.Dims) {
			continue
		}
		iv := &b.Dims[p.Attr]
		switch p.Op {
		case LT:
			if p.Value-1 < iv.Hi {
				iv.Hi = p.Value - 1
			}
		case LE:
			if p.Value < iv.Hi {
				iv.Hi = p.Value
			}
		case EQ:
			if p.Value > iv.Lo {
				iv.Lo = p.Value
			}
			if p.Value < iv.Hi {
				iv.Hi = p.Value
			}
		case GE:
			if p.Value > iv.Lo {
				iv.Lo = p.Value
			}
		case GT:
			if p.Value+1 > iv.Lo {
				iv.Lo = p.Value + 1
			}
		}
	}
	return b
}

// Normalize returns an equivalent query with at most one lower and one
// upper bound predicate per attribute (LE/GE form), sorted by attribute.
// Equality constraints become a pair LE/GE with the same value.
func (q Q) Normalize(domains []Interval) Q {
	b := q.Canonicalize(domains)
	var out Q
	for i, iv := range b.Dims {
		full := domains[i]
		if iv.Lo == iv.Hi {
			out = append(out, Predicate{Attr: i, Op: EQ, Value: iv.Lo})
			continue
		}
		if iv.Lo > full.Lo {
			out = append(out, Predicate{Attr: i, Op: GE, Value: iv.Lo})
		}
		if iv.Hi < full.Hi {
			out = append(out, Predicate{Attr: i, Op: LE, Value: iv.Hi})
		}
	}
	sort.Slice(out, func(a, c int) bool {
		if out[a].Attr != out[c].Attr {
			return out[a].Attr < out[c].Attr
		}
		return out[a].Op < out[c].Op
	})
	return out
}

// UsesOnly reports whether every predicate's operator is in allowed.
func (q Q) UsesOnly(allowed ...Op) bool {
	for _, p := range q {
		ok := false
		for _, a := range allowed {
			if p.Op == a {
				ok = true
				break
			}
		}
		if !ok {
			return false
		}
	}
	return true
}
