package query

import (
	"fmt"
	"strconv"
	"strings"
)

// Parse turns a compact textual filter into a conjunctive query. The
// grammar is one comma-separated predicate list:
//
//	"A0<5, A2>=3, A1=7"
//
// Attribute references are "A<index>" (case-insensitive); operators are
// <, <=, =, ==, >=, >; values are decimal integers. Whitespace is free.
// The CLI tools use this for ad-hoc filtered discovery (§2.1).
func Parse(s string) (Q, error) {
	s = strings.TrimSpace(s)
	if s == "" {
		return nil, nil
	}
	var q Q
	for _, part := range strings.Split(s, ",") {
		p, err := parsePredicate(part)
		if err != nil {
			return nil, err
		}
		q = append(q, p)
	}
	return q, nil
}

// MustParse is Parse that panics on malformed input; for tests and fixed
// literals.
func MustParse(s string) Q {
	q, err := Parse(s)
	if err != nil {
		panic(err)
	}
	return q
}

func parsePredicate(s string) (Predicate, error) {
	raw := strings.TrimSpace(s)
	if raw == "" {
		return Predicate{}, fmt.Errorf("query: empty predicate")
	}
	// Longest operators first so "<=" is not read as "<".
	ops := []struct {
		text string
		op   Op
	}{
		{"<=", LE}, {">=", GE}, {"==", EQ}, {"<", LT}, {">", GT}, {"=", EQ},
	}
	for _, cand := range ops {
		idx := strings.Index(raw, cand.text)
		if idx < 0 {
			continue
		}
		attrPart := strings.TrimSpace(raw[:idx])
		valPart := strings.TrimSpace(raw[idx+len(cand.text):])
		attr, err := parseAttrRef(attrPart)
		if err != nil {
			return Predicate{}, fmt.Errorf("query: predicate %q: %w", raw, err)
		}
		val, err := strconv.Atoi(valPart)
		if err != nil {
			return Predicate{}, fmt.Errorf("query: predicate %q: bad value %q", raw, valPart)
		}
		return Predicate{Attr: attr, Op: cand.op, Value: val}, nil
	}
	return Predicate{}, fmt.Errorf("query: predicate %q has no operator", raw)
}

func parseAttrRef(s string) (int, error) {
	if len(s) < 2 || (s[0] != 'A' && s[0] != 'a') {
		return 0, fmt.Errorf("bad attribute reference %q (want A<index>)", s)
	}
	idx, err := strconv.Atoi(s[1:])
	if err != nil || idx < 0 {
		return 0, fmt.Errorf("bad attribute index %q", s[1:])
	}
	return idx, nil
}
