// Package datagen generates the datasets behind the paper's evaluation:
// classic synthetic skyline workloads (independent, correlated,
// anti-correlated, Boolean-correlation sweeps), a synthetic stand-in for
// the US DOT flight on-time database used in the offline experiments, and
// simulated Blue Nile, Google Flights and Yahoo! Autos databases matching
// the published scales of the online experiments. All generators are
// deterministic given their seed.
//
// Every attribute is integer-coded so that smaller values are preferred;
// attributes whose natural order is "larger is better" (carat, model year,
// departure time, distance) are rank-encoded by subtraction from their
// maximum, which preserves dominance relations exactly.
package datagen

import (
	"fmt"
	"math"
	"math/rand"

	"hiddensky/internal/hidden"
)

// Attr describes one ranking attribute of a generated dataset.
type Attr struct {
	// Name identifies the attribute ("Price", "Taxi-out", ...).
	Name string
	// Cap is the search-interface capability the real site offers for it.
	Cap hidden.Capability
}

// Dataset is a generated database plus its interface metadata.
type Dataset struct {
	// Name identifies the dataset ("dot-flights", "bluenile", ...).
	Name string
	// Attrs describes the ranking attributes, aligned with Data columns.
	Attrs []Attr
	// Data holds the integer-coded tuples (smaller preferred everywhere).
	Data [][]int
	// FilterNames / Filters optionally carry order-less filtering
	// attributes (carrier, flight number...), aligned with Data rows.
	FilterNames []string
	Filters     [][]string
}

// Caps returns the per-attribute capabilities.
func (d Dataset) Caps() []hidden.Capability {
	out := make([]hidden.Capability, len(d.Attrs))
	for i, a := range d.Attrs {
		out[i] = a.Cap
	}
	return out
}

// WithCaps returns a copy of the dataset with every attribute forced to
// capability c (experiments sweep the same data across interface types).
func (d Dataset) WithCaps(c hidden.Capability) Dataset {
	attrs := make([]Attr, len(d.Attrs))
	for i, a := range d.Attrs {
		attrs[i] = Attr{Name: a.Name, Cap: c}
	}
	d.Attrs = attrs
	return d
}

// Project returns a dataset restricted to the given attribute columns.
func (d Dataset) Project(cols ...int) Dataset {
	attrs := make([]Attr, len(cols))
	for i, c := range cols {
		attrs[i] = d.Attrs[c]
	}
	data := make([][]int, len(d.Data))
	for i, t := range d.Data {
		row := make([]int, len(cols))
		for j, c := range cols {
			row[j] = t[c]
		}
		data[i] = row
	}
	return Dataset{
		Name:        d.Name,
		Attrs:       attrs,
		Data:        data,
		FilterNames: d.FilterNames,
		Filters:     d.Filters,
	}
}

// Sample returns a dataset with n tuples drawn uniformly without
// replacement (the paper's technique for the Figure 14 size sweep).
func (d Dataset) Sample(rng *rand.Rand, n int) Dataset {
	if n >= len(d.Data) {
		return d
	}
	perm := rng.Perm(len(d.Data))[:n]
	data := make([][]int, n)
	var filters [][]string
	if d.Filters != nil {
		filters = make([][]string, n)
	}
	for i, j := range perm {
		data[i] = d.Data[j]
		if filters != nil {
			filters[i] = d.Filters[j]
		}
	}
	out := d
	out.Data = data
	out.Filters = filters
	return out
}

// Config assembles a hidden-database configuration serving this dataset.
func (d Dataset) Config(k int, rank hidden.Ranking) hidden.Config {
	return hidden.Config{
		Data:    d.Data,
		Caps:    d.Caps(),
		K:       k,
		Rank:    rank,
		Filters: d.Filters,
	}
}

// DB builds the hidden database directly, panicking on configuration
// errors (generated datasets are well-formed by construction).
func (d Dataset) DB(k int, rank hidden.Ranking) *hidden.DB {
	return hidden.MustNew(d.Config(k, rank))
}

// Independent draws n tuples with m i.i.d. uniform attributes over
// [0, domain).
func Independent(seed int64, n, m, domain int) Dataset {
	rng := rand.New(rand.NewSource(seed))
	data := make([][]int, n)
	for i := range data {
		t := make([]int, m)
		for j := range t {
			t[j] = rng.Intn(domain)
		}
		data[i] = t
	}
	return Dataset{Name: "independent", Attrs: genericAttrs(m), Data: data}
}

// Correlated draws tuples whose attributes share a latent quality factor:
// rho in [0,1] blends the shared factor with independent noise. High rho
// shrinks the skyline (the paper controls |S| this way in Figure 6).
func Correlated(seed int64, n, m, domain int, rho float64) Dataset {
	rng := rand.New(rand.NewSource(seed))
	data := make([][]int, n)
	for i := range data {
		base := rng.Float64()
		t := make([]int, m)
		for j := range t {
			v := rho*base + (1-rho)*rng.Float64()
			t[j] = clampInt(int(v*float64(domain)), 0, domain-1)
		}
		data[i] = t
	}
	return Dataset{Name: "correlated", Attrs: genericAttrs(m), Data: data}
}

// AntiCorrelated draws tuples near the constant-sum hyperplane with
// inverse trade-offs between attributes — the classic skyline stress
// workload with a large skyline.
func AntiCorrelated(seed int64, n, m, domain int) Dataset {
	rng := rand.New(rand.NewSource(seed))
	data := make([][]int, n)
	for i := range data {
		t := make([]int, m)
		// Sample a random direction on the simplex and scale to a total
		// budget concentrated near m*domain/2.
		w := make([]float64, m)
		sum := 0.0
		for j := range w {
			w[j] = -math.Log(1 - rng.Float64())
			sum += w[j]
		}
		budget := float64(domain) * float64(m) / 2 * (0.85 + 0.3*rng.Float64())
		for j := range t {
			t[j] = clampInt(int(w[j]/sum*budget), 0, domain-1)
		}
		data[i] = t
	}
	return Dataset{Name: "anticorrelated", Attrs: genericAttrs(m), Data: data}
}

// CorrelationSweep generates the Figure 6 simulation databases: n tuples,
// m small-domain attributes whose pairwise correlation is swept from
// strongly positive (tiny skyline) to strongly negative (huge skyline).
// corr in [-1, 1].
func CorrelationSweep(seed int64, n, m, domain int, corr float64) Dataset {
	rng := rand.New(rand.NewSource(seed))
	data := make([][]int, n)
	for i := range data {
		t := make([]int, m)
		base := rng.Float64()
		for j := range t {
			var v float64
			switch {
			case corr >= 0:
				v = corr*base + (1-corr)*rng.Float64()
			default:
				// Anti-correlation: alternate attributes pull in opposite
				// directions around the shared factor.
				a := -corr
				if j%2 == 0 {
					v = a*base + (1-a)*rng.Float64()
				} else {
					v = a*(1-base) + (1-a)*rng.Float64()
				}
			}
			t[j] = clampInt(int(v*float64(domain)), 0, domain-1)
		}
		data[i] = t
	}
	return Dataset{Name: "corr-sweep", Attrs: genericAttrs(m), Data: data}
}

func genericAttrs(m int) []Attr {
	out := make([]Attr, m)
	for i := range out {
		out[i] = Attr{Name: fmt.Sprintf("A%d", i), Cap: hidden.RQ}
	}
	return out
}

func clampInt(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// normInt draws a clamped discretized gaussian.
func normInt(rng *rand.Rand, mean, sd float64, lo, hi int) int {
	return clampInt(int(rng.NormFloat64()*sd+mean), lo, hi)
}

// Zipf draws n tuples whose attribute values follow a Zipf distribution
// (exponent skew > 1) over [0, domain): most tuples crowd the preferred
// low values with a long tail of poor ones — the value-frequency shape of
// real web catalogs (most listings are ordinary, a few are extreme).
func Zipf(seed int64, n, m, domain int, skew float64) Dataset {
	rng := rand.New(rand.NewSource(seed))
	if skew <= 1 {
		skew = 1.07
	}
	z := rand.NewZipf(rng, skew, 1, uint64(domain-1))
	data := make([][]int, n)
	for i := range data {
		t := make([]int, m)
		for j := range t {
			t[j] = int(z.Uint64())
		}
		data[i] = t
	}
	return Dataset{Name: "zipf", Attrs: genericAttrs(m), Data: data}
}
