package datagen

import (
	"fmt"
	"math/rand"
	"sort"

	"hiddensky/internal/hidden"
)

// Column indices of the Flights dataset, mirroring the nine ordinal
// ranking attributes the paper selects from the US DOT on-time database
// (plus the four derived "group" attributes used as extra PQ columns).
const (
	FlightDepDelay = iota
	FlightTaxiOut
	FlightTaxiIn
	FlightElapsed
	FlightAirTime
	FlightDistanceRank // longer distance preferred, rank-encoded
	FlightDelayGroup   // pre-discretized by DOT: PQ
	FlightDistGroup    // pre-discretized by DOT: PQ
	FlightArrDelay
	FlightTaxiOutGroup // derived PQ
	FlightTaxiInGroup  // derived PQ
	FlightArrDelayGrp  // derived PQ
	FlightAirTimeGroup // derived PQ
	flightNumCols
)

// FlightRankingAttrs indexes the paper's nine primary ranking attributes.
var FlightRankingAttrs = []int{
	FlightDepDelay, FlightTaxiOut, FlightTaxiIn, FlightElapsed,
	FlightAirTime, FlightDistanceRank, FlightDelayGroup, FlightDistGroup,
	FlightArrDelay,
}

// FlightPQAttrs indexes the point-predicate candidates: the two DOT-
// discretized groups plus the four derived groups.
var FlightPQAttrs = []int{
	FlightDelayGroup, FlightDistGroup, FlightTaxiOutGroup,
	FlightTaxiInGroup, FlightArrDelayGrp, FlightAirTimeGroup,
}

// maxFlightDistance bounds the route length in miles; the paper reports
// attribute domains up to 4,983 values, which Distance provides.
const maxFlightDistance = 4982

// Flights synthesizes a stand-in for the DOT January-2015 on-time dataset
// (457,013 flights in the paper). The correlation structure follows the
// real data:
//
//   - air time tracks distance; elapsed time is air time plus the taxi
//     phases; arrival delay tracks departure delay minus en-route slack;
//   - a per-flight congestion factor couples ground times and delays;
//   - long routes fly from big hubs (longer taxi) but carry more schedule
//     padding (earlier arrivals), so no flight is best at everything;
//   - the "group" columns are DOT's separately-normalized coarse metrics:
//     quantile bins of a noisy view of their base attribute, with the best
//     bins rare — as in the real data, where the top delay group means
//     arriving hours early. This keeps the point-predicate skyline
//     non-degenerate at any database size.
//
// Filtering attributes (carrier, flight number) ride along to demonstrate
// that they have no bearing on skyline discovery.
func Flights(seed int64, n int) Dataset {
	rng := rand.New(rand.NewSource(seed))
	carriers := []string{"AA", "DL", "UA", "WN", "B6", "AS", "NK", "F9", "HA", "VX", "OO", "EV", "MQ", "US"}

	type raw struct {
		distance, airTime, taxiOut, taxiIn, elapsed, depDelay, arrDelay int
	}
	raws := make([]raw, n)
	filters := make([][]string, n)
	for i := range raws {
		distance := 100 + int(rng.ExpFloat64()*600)
		if distance > maxFlightDistance {
			distance = maxFlightDistance
		}
		congestion := rng.NormFloat64()
		hub := float64(distance) / 500
		airTime := clampInt(int(float64(distance)/7.5)+normInt(rng, 10, 8, -20, 60), 15, 649)
		taxiOut := clampInt(2*normInt(rng, 6+hub+3*congestion, 3, 0, 89)+1, 1, 179)
		taxiIn := clampInt(2*normInt(rng, 3+hub/2+2*congestion, 2, 0, 59)+1, 1, 119)
		elapsed := clampInt(airTime+taxiOut+taxiIn+normInt(rng, 5, 5, 0, 30), 20, 699)

		// Departure delay in minutes relative to 20 minutes early (DOT
		// records early departures as negative delays; shifting keeps the
		// encoding non-negative while leaving the best values rare). Real
		// DOT delays are heavily tied, so quantize to 3-minute bins; heavy
		// right tail for the genuinely delayed flights.
		depDelay := 3 * normInt(rng, 6+2*congestion, 2, 0, 20)
		if rng.Float64() < 0.25 {
			depDelay += 3 * int(rng.ExpFloat64()*12)
			if depDelay > 1819 {
				depDelay = 1819
			}
		}
		// Arrival delay relative to 80 minutes early; long routes carry
		// more padding and arrive earlier relative to plan.
		padding := 19 - float64(distance)/300
		arrDelay := clampInt(depDelay+3*normInt(rng, padding, 7, -26, 43), 0, 1979)

		raws[i] = raw{distance, airTime, taxiOut, taxiIn, elapsed, depDelay, arrDelay}
		filters[i] = []string{
			carriers[rng.Intn(len(carriers))],
			fmt.Sprintf("%04d", 1+rng.Intn(8999)),
		}
	}

	// Quantile-binned group metrics: bin boundaries at p_i = (i/B)^2 of the
	// noisy score distribution, so the best bin holds <1% of flights and
	// bin widths grow toward the common middle — no attainable joint
	// minimum, exactly like DOT's normalized groups.
	bin := func(bins int, noise float64, score func(raw) float64) []int {
		scores := make([]float64, n)
		for i, r := range raws {
			scores[i] = score(r) + noise*rng.NormFloat64()
		}
		sorted := append([]float64(nil), scores...)
		sort.Float64s(sorted)
		cuts := make([]float64, bins-1)
		for b := 1; b < bins; b++ {
			frac := float64(b) / float64(bins)
			idx := int(frac * frac * float64(n))
			if idx >= n {
				idx = n - 1
			}
			cuts[b-1] = sorted[idx]
		}
		out := make([]int, n)
		for i, s := range scores {
			out[i] = sort.SearchFloat64s(cuts, s)
		}
		return out
	}
	delayGroup := bin(12, 9, func(r raw) float64 { return float64(r.arrDelay) })
	distGroup := bin(11, 150, func(r raw) float64 { return float64(maxFlightDistance - r.distance) })
	taxiOutGroup := bin(18, 4, func(r raw) float64 { return float64(r.taxiOut) })
	taxiInGroup := bin(12, 3, func(r raw) float64 { return float64(r.taxiIn) })
	arrDelayGrp := bin(16, 20, func(r raw) float64 { return float64(r.arrDelay) })
	airTimeGroup := bin(11, 25, func(r raw) float64 { return float64(r.airTime) })

	data := make([][]int, n)
	for i, r := range raws {
		t := make([]int, flightNumCols)
		t[FlightDepDelay] = r.depDelay
		t[FlightTaxiOut] = r.taxiOut
		t[FlightTaxiIn] = r.taxiIn
		t[FlightElapsed] = r.elapsed
		t[FlightAirTime] = r.airTime
		t[FlightDistanceRank] = maxFlightDistance - r.distance
		t[FlightDelayGroup] = delayGroup[i]
		t[FlightDistGroup] = distGroup[i]
		t[FlightArrDelay] = r.arrDelay
		t[FlightTaxiOutGroup] = taxiOutGroup[i]
		t[FlightTaxiInGroup] = taxiInGroup[i]
		t[FlightArrDelayGrp] = arrDelayGrp[i]
		t[FlightAirTimeGroup] = airTimeGroup[i]
		data[i] = t
	}
	attrs := []Attr{
		{Name: "Dep-Delay", Cap: hidden.RQ},
		{Name: "Taxi-out", Cap: hidden.RQ},
		{Name: "Taxi-in", Cap: hidden.RQ},
		{Name: "Actual-elapsed-time", Cap: hidden.RQ},
		{Name: "Air-time", Cap: hidden.RQ},
		{Name: "Distance", Cap: hidden.RQ},
		{Name: "Delay-group-normal", Cap: hidden.PQ},
		{Name: "Distance-group", Cap: hidden.PQ},
		{Name: "ArrivalDelay", Cap: hidden.RQ},
		{Name: "Taxi-out-group", Cap: hidden.PQ},
		{Name: "Taxi-in-group", Cap: hidden.PQ},
		{Name: "ArrivalDelay-group", Cap: hidden.PQ},
		{Name: "Air-Time-group", Cap: hidden.PQ},
	}
	return Dataset{
		Name:        "dot-flights",
		Attrs:       attrs,
		Data:        data,
		FilterNames: []string{"Carrier", "FlightNumber"},
		Filters:     filters,
	}
}

// TruncateDomain returns a copy of the dataset where attribute col keeps
// only its v smallest values, removing tuples outside them — the paper's
// Figure 17 procedure for sweeping PQ domain sizes.
func (d Dataset) TruncateDomain(col, v int) Dataset {
	var data [][]int
	var filters [][]string
	for i, t := range d.Data {
		if t[col] < v {
			data = append(data, t)
			if d.Filters != nil {
				filters = append(filters, d.Filters[i])
			}
		}
	}
	out := d
	out.Data = data
	out.Filters = filters
	return out
}
