package datagen

import (
	"bytes"
	"math/rand"
	"testing"

	"hiddensky/internal/hidden"
	"hiddensky/internal/skyline"
)

func TestGeneratorsDeterministic(t *testing.T) {
	for _, gen := range []struct {
		name string
		make func() Dataset
	}{
		{"independent", func() Dataset { return Independent(7, 500, 4, 100) }},
		{"correlated", func() Dataset { return Correlated(7, 500, 4, 100, 0.8) }},
		{"anticorrelated", func() Dataset { return AntiCorrelated(7, 500, 4, 100) }},
		{"sweep", func() Dataset { return CorrelationSweep(7, 500, 4, 16, -0.5) }},
		{"flights", func() Dataset { return Flights(7, 500) }},
		{"bluenile", func() Dataset { return BlueNile(7, 500) }},
		{"autos", func() Dataset { return YahooAutos(7, 500) }},
		{"gflights", func() Dataset { return GoogleFlightsRoute(7) }},
	} {
		a, b := gen.make(), gen.make()
		if len(a.Data) != len(b.Data) {
			t.Fatalf("%s: nondeterministic size", gen.name)
		}
		for i := range a.Data {
			for j := range a.Data[i] {
				if a.Data[i][j] != b.Data[i][j] {
					t.Fatalf("%s: nondeterministic at tuple %d attr %d", gen.name, i, j)
				}
			}
		}
	}
}

func TestGeneratorsShape(t *testing.T) {
	fl := Flights(1, 2000)
	if len(fl.Attrs) != flightNumCols || len(fl.Data) != 2000 {
		t.Fatalf("flights: %d attrs, %d tuples", len(fl.Attrs), len(fl.Data))
	}
	for _, tup := range fl.Data {
		if tup[FlightElapsed] < tup[FlightAirTime] {
			t.Fatalf("elapsed %d < air time %d", tup[FlightElapsed], tup[FlightAirTime])
		}
		if tup[FlightDelayGroup] > 11 || tup[FlightDistGroup] > 10 {
			t.Fatalf("group attribute out of range: %v", tup)
		}
	}
	for _, a := range FlightPQAttrs {
		if fl.Attrs[a].Cap != hidden.PQ {
			t.Errorf("attr %s should be PQ", fl.Attrs[a].Name)
		}
	}

	bn := BlueNile(1, 3000)
	for _, tup := range bn.Data {
		if tup[DiamondPrice] < 320 {
			t.Fatalf("price %d below floor", tup[DiamondPrice])
		}
		if tup[DiamondCut] > 3 || tup[DiamondColor] > 6 || tup[DiamondClarity] > 7 {
			t.Fatalf("grade out of range: %v", tup)
		}
	}

	gf := GoogleFlightsRoute(1)
	for _, tup := range gf.Data {
		if tup[GFStops] == 0 && tup[GFConnection] != 0 {
			t.Fatalf("nonstop flight with connection time: %v", tup)
		}
		if tup[GFStops] > 2 {
			t.Fatalf("stops out of range: %v", tup)
		}
	}
	if gf.Attrs[GFStops].Cap != hidden.SQ || gf.Attrs[GFDepTimeRank].Cap != hidden.RQ {
		t.Error("Google Flights capabilities do not match the QPX interface")
	}
}

func TestCorrelationControlsSkylineSize(t *testing.T) {
	// The Figure 6 knob: more positive correlation, smaller skyline.
	sizes := map[float64]int{}
	for _, corr := range []float64{0.9, 0.0, -0.9} {
		d := CorrelationSweep(3, 2000, 4, 16, corr)
		sizes[corr] = len(skyline.Compute(d.Data))
	}
	if !(sizes[0.9] < sizes[0.0] && sizes[0.0] < sizes[-0.9]) {
		t.Fatalf("skyline sizes not ordered by correlation: %v", sizes)
	}
}

func TestRealisticSkylineScales(t *testing.T) {
	// At full published scale the web datasets should produce skylines in
	// the same order of magnitude as the paper reports (BN ~2149, YA
	// ~1601). Scaled-down instances here just check "hundreds, not
	// single digits and not half the data".
	bn := BlueNile(5, 40000)
	s := len(skyline.Compute(bn.Data))
	if s < 50 || s > 4000 {
		t.Fatalf("bluenile skyline %d out of plausible band", s)
	}
	ya := YahooAutos(5, 40000)
	s = len(skyline.Compute(ya.Data))
	if s < 30 || s > 4000 {
		t.Fatalf("autos skyline %d out of plausible band", s)
	}
	gf := GoogleFlightsRoute(5)
	s = len(skyline.Compute(gf.Data))
	if s < 2 || s > 40 {
		t.Fatalf("google-flights skyline %d out of plausible band", s)
	}
}

func TestProjectAndSample(t *testing.T) {
	d := Flights(2, 1000)
	p := d.Project(FlightDepDelay, FlightArrDelay, FlightDistGroup)
	if len(p.Attrs) != 3 || p.Attrs[2].Name != "Distance-group" {
		t.Fatalf("bad projection: %+v", p.Attrs)
	}
	for i, tup := range p.Data {
		if tup[0] != d.Data[i][FlightDepDelay] || tup[2] != d.Data[i][FlightDistGroup] {
			t.Fatal("projection scrambled values")
		}
	}
	rng := rand.New(rand.NewSource(1))
	s := d.Sample(rng, 100)
	if len(s.Data) != 100 || len(s.Filters) != 100 {
		t.Fatalf("sample size %d/%d", len(s.Data), len(s.Filters))
	}
	if got := d.Sample(rng, 5000); len(got.Data) != 1000 {
		t.Fatal("oversampling should return the full dataset")
	}
}

func TestTruncateDomain(t *testing.T) {
	d := Flights(3, 3000)
	tr := d.TruncateDomain(FlightDelayGroup, 4)
	if len(tr.Data) == 0 || len(tr.Data) >= len(d.Data) {
		t.Fatalf("truncation kept %d of %d", len(tr.Data), len(d.Data))
	}
	for _, tup := range tr.Data {
		if tup[FlightDelayGroup] >= 4 {
			t.Fatalf("tuple above truncated domain: %v", tup)
		}
	}
	if len(tr.Filters) != len(tr.Data) {
		t.Fatal("filters misaligned after truncation")
	}
}

func TestDatasetDBRoundTrip(t *testing.T) {
	d := GoogleFlightsRoute(9)
	db := d.DB(10, hidden.AttrRank{Attr: GFPrice})
	if db.NumAttrs() != 4 || db.K() != 10 {
		t.Fatal("config not honored")
	}
	res, filters, err := db.QueryFull(nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Tuples) != 10 || len(filters) != 10 {
		t.Fatalf("top-10 returned %d tuples, %d filter rows", len(res.Tuples), len(filters))
	}
	for i := 1; i < len(res.Tuples); i++ {
		if res.Tuples[i][GFPrice] < res.Tuples[i-1][GFPrice] {
			t.Fatal("price ranking violated")
		}
	}
}

func TestCSVRoundTrip(t *testing.T) {
	d := GoogleFlightsRoute(11)
	var buf bytes.Buffer
	if err := d.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Data) != len(d.Data) || len(back.Attrs) != len(d.Attrs) {
		t.Fatalf("round trip lost rows or columns")
	}
	for i := range d.Data {
		for j := range d.Data[i] {
			if back.Data[i][j] != d.Data[i][j] {
				t.Fatalf("value mismatch at %d/%d", i, j)
			}
		}
		for j := range d.Filters[i] {
			if back.Filters[i][j] != d.Filters[i][j] {
				t.Fatalf("filter mismatch at %d/%d", i, j)
			}
		}
	}
	for i := range d.Attrs {
		if back.Attrs[i] != d.Attrs[i] {
			t.Fatalf("attr mismatch: %+v vs %+v", back.Attrs[i], d.Attrs[i])
		}
	}
}

func TestCSVErrors(t *testing.T) {
	for _, tc := range []struct{ name, in string }{
		{"empty", ""},
		{"no-data", "A,B\nRQ,RQ\n"},
		{"bad-cap", "A,B\nRQ,XX\n1,2\n"},
		{"bad-int", "A,B\nRQ,RQ\n1,x\n"},
	} {
		if _, err := ReadCSV(bytes.NewBufferString(tc.in)); err == nil {
			t.Errorf("%s: expected error", tc.name)
		}
	}
	if _, err := ParseCapability("pq"); err != nil {
		t.Errorf("lower-case capability rejected: %v", err)
	}
}

func TestZipfShape(t *testing.T) {
	d := Zipf(3, 5000, 3, 50, 1.3)
	if len(d.Data) != 5000 || len(d.Attrs) != 3 {
		t.Fatalf("zipf shape %d x %d", len(d.Data), len(d.Attrs))
	}
	// Skewed toward 0: the bottom fifth of the domain must hold a clear
	// majority of the values.
	low, total := 0, 0
	for _, tup := range d.Data {
		for _, v := range tup {
			if v < 0 || v >= 50 {
				t.Fatalf("value %d out of domain", v)
			}
			if v < 10 {
				low++
			}
			total++
		}
	}
	if float64(low)/float64(total) < 0.6 {
		t.Fatalf("zipf not skewed: %d/%d low values", low, total)
	}
	// Degenerate skew falls back to a legal exponent.
	d2 := Zipf(3, 100, 2, 10, 0.5)
	if len(d2.Data) != 100 {
		t.Fatal("fallback skew broken")
	}
}

func TestZipfDiscoverable(t *testing.T) {
	d := Zipf(4, 800, 3, 12, 1.2)
	db := d.DB(3, hidden.SumRank{})
	if db.NumAttrs() != 3 {
		t.Fatal("config")
	}
}
