package datagen

import (
	"fmt"
	"math"
	"math/rand"

	"hiddensky/internal/hidden"
)

// Column indices of the BlueNile dataset.
const (
	DiamondPrice     = iota
	DiamondCaratRank // larger carat preferred, rank-encoded
	DiamondCut       // 0 = Ideal ... 3 = Good
	DiamondColor     // 0 = D ... 6 = J
	DiamondClarity   // 0 = FL ... 7 = SI2
	diamondNumCols
)

// bnMaxCaratPoints is the largest carat weight in hundredths (5.09 ct).
const bnMaxCaratPoints = 509

// BlueNile synthesizes the Blue Nile diamond catalog at its published
// scale (209,666 diamonds over Price, Carat, Cut, Color, Clarity, all
// served with two-ended ranges and ranked by price ascending). Price grows
// super-linearly with carat and with the quality grades, so price trades
// off against every other attribute — the structure that gives the real
// site its ~2,000-tuple skyline. The Shape attribute of the real site is a
// filtering attribute and rides along as such.
func BlueNile(seed int64, n int) Dataset {
	rng := rand.New(rand.NewSource(seed))
	shapes := []string{"Round", "Princess", "Cushion", "Oval", "Emerald", "Pear", "Asscher", "Radiant", "Marquise", "Heart"}
	data := make([][]int, n)
	filters := make([][]string, n)
	for i := range data {
		// Carat clusters on 0.05ct steps like real inventory.
		caratPts := clampInt(25+5*int(rng.ExpFloat64()*11), 25, bnMaxCaratPoints)
		cut := rng.Intn(4)
		color := rng.Intn(7)
		clarity := rng.Intn(8)
		// Grades nudge the price but market noise dwarfs them, so bargain
		// high-grade stones frequently undercut low-grade ones — the
		// cross-grade domination that keeps the real skyline ~2k.
		quality := 1.0 +
			0.05*float64(3-cut) +
			0.035*float64(6-color) +
			0.03*float64(7-clarity)
		carat := float64(caratPts) / 100
		base := 2400 * math.Pow(carat, 1.9) * quality
		price := clampInt(int(base*(0.55+0.9*rng.Float64())), 320, 2500000)

		t := make([]int, diamondNumCols)
		t[DiamondPrice] = price
		t[DiamondCaratRank] = bnMaxCaratPoints - caratPts
		t[DiamondCut] = cut
		t[DiamondColor] = color
		t[DiamondClarity] = clarity
		data[i] = t
		filters[i] = []string{shapes[rng.Intn(len(shapes))], fmt.Sprintf("LD%08d", rng.Intn(99999999))}
	}
	attrs := []Attr{
		{Name: "Price", Cap: hidden.RQ},
		{Name: "Carat", Cap: hidden.RQ},
		{Name: "Cut", Cap: hidden.RQ},
		{Name: "Color", Cap: hidden.RQ},
		{Name: "Clarity", Cap: hidden.RQ},
	}
	return Dataset{
		Name:        "bluenile",
		Attrs:       attrs,
		Data:        data,
		FilterNames: []string{"Shape", "StockID"},
		Filters:     filters,
	}
}

// Column indices of the YahooAutos dataset.
const (
	AutoPrice = iota
	AutoMileage
	AutoYearRank // newer preferred, rank-encoded (0 = current model year)
	autoNumCols
)

// YahooAutos synthesizes the Yahoo! Autos used-car listings near New York
// City at the published scale (125,149 cars over Price, Mileage, Year, all
// two-ended ranges, ranked by price ascending). Older and higher-mileage
// cars are cheaper, so all three attributes trade off pairwise, giving a
// skyline in the low thousands like the ~1,601 the paper reports.
func YahooAutos(seed int64, n int) Dataset {
	rng := rand.New(rand.NewSource(seed))
	makes := []string{"Toyota", "Honda", "Ford", "Chevrolet", "Nissan", "BMW", "Mercedes", "Hyundai", "Kia", "Subaru", "Jeep", "Audi"}
	data := make([][]int, n)
	filters := make([][]string, n)
	for i := range data {
		age := clampInt(int(rng.ExpFloat64()*6), 0, 25)
		mileage := clampInt(int(float64(age)*11500*(0.2+1.7*rng.Float64()))+rng.Intn(3000), 0, 299999)
		segment := 16000 + rng.Intn(80000) // new-price of the model
		depreciation := math.Pow(0.88, float64(age)) * math.Pow(0.986, float64(mileage)/1000)
		price := clampInt(int(float64(segment)*depreciation*(0.965+0.07*rng.Float64())), 500, 200000)

		t := make([]int, autoNumCols)
		t[AutoPrice] = price
		t[AutoMileage] = mileage
		t[AutoYearRank] = age
		data[i] = t
		filters[i] = []string{makes[rng.Intn(len(makes))], fmt.Sprintf("VIN%09d", rng.Intn(999999999))}
	}
	attrs := []Attr{
		{Name: "Price", Cap: hidden.RQ},
		{Name: "Mileage", Cap: hidden.RQ},
		{Name: "Year", Cap: hidden.RQ},
	}
	return Dataset{
		Name:        "yahoo-autos",
		Attrs:       attrs,
		Data:        data,
		FilterNames: []string{"Make", "VIN"},
		Filters:     filters,
	}
}

// Column indices of a GoogleFlightsRoute dataset.
const (
	GFStops = iota
	GFPrice
	GFConnection
	GFDepTimeRank // later departure preferred, rank-encoded
	gfNumCols
)

// gfLatestDeparture is the last departure minute of the day (23:59).
const gfLatestDeparture = 23*60 + 59

// GoogleFlightsRoute synthesizes one route/date flight database as exposed
// by the QPX API: Stops, Price and ConnectionDuration support one-ended
// ranges, DepartureTime supports two-ended ranges, and the default ranking
// is price ascending. Nonstop flights are pricier; connection time exists
// only when there are stops. One route/date holds a few dozen itineraries;
// fares come in $5 buckets and schedules in 5-minute slots, as airline
// inventory does — the small, tied domains keep the skyline at the paper's
// 4-11 flights and complete discovery within the free 50-query quota.
func GoogleFlightsRoute(seed int64) Dataset {
	rng := rand.New(rand.NewSource(seed))
	n := 25 + rng.Intn(55)
	airlines := []string{"AA", "DL", "UA", "B6", "AS", "WN", "NK", "F9"}
	base := 90 + rng.Intn(220) // route fare level
	data := make([][]int, n)
	filters := make([][]string, n)
	for i := range data {
		stops := 0
		r := rng.Float64()
		switch {
		case r < 0.3:
			stops = 0
		case r < 0.8:
			stops = 1
		default:
			stops = 2
		}
		conn := 0
		if stops > 0 {
			conn = clampInt((35+int(rng.ExpFloat64()*70)*stops)/5*5, 30, 600)
		}
		dep := rng.Intn((gfLatestDeparture+1)/5) * 5
		price := clampInt(int(float64(base)*(1.6-0.35*float64(stops))*(0.7+0.7*rng.Float64()))/5*5, 40, 1900)

		t := make([]int, gfNumCols)
		t[GFStops] = stops
		t[GFPrice] = price
		t[GFConnection] = conn
		t[GFDepTimeRank] = gfLatestDeparture - dep
		data[i] = t
		filters[i] = []string{airlines[rng.Intn(len(airlines))], fmt.Sprintf("%d", 100+rng.Intn(8899))}
	}
	attrs := []Attr{
		{Name: "Stops", Cap: hidden.SQ},
		{Name: "Price", Cap: hidden.SQ},
		{Name: "ConnectionDuration", Cap: hidden.SQ},
		{Name: "DepartureTime", Cap: hidden.RQ},
	}
	return Dataset{
		Name:        "google-flights-route",
		Attrs:       attrs,
		Data:        data,
		FilterNames: []string{"Airline", "FlightNumber"},
		Filters:     filters,
	}
}
