package datagen

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
	"strings"

	"hiddensky/internal/hidden"
)

// WriteCSV serializes the dataset with a two-row header: attribute names
// (filter columns prefixed with "#") and capabilities (SQ/RQ/PQ, "-" for
// filters), followed by one row per tuple.
func (d Dataset) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	names := make([]string, 0, len(d.Attrs)+len(d.FilterNames))
	caps := make([]string, 0, cap(names))
	for _, a := range d.Attrs {
		names = append(names, a.Name)
		caps = append(caps, a.Cap.String())
	}
	for _, fn := range d.FilterNames {
		names = append(names, "#"+fn)
		caps = append(caps, "-")
	}
	if err := cw.Write(names); err != nil {
		return err
	}
	if err := cw.Write(caps); err != nil {
		return err
	}
	for i, t := range d.Data {
		row := make([]string, 0, len(names))
		for _, v := range t {
			row = append(row, strconv.Itoa(v))
		}
		if d.Filters != nil {
			row = append(row, d.Filters[i]...)
		}
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadCSV parses a dataset written by WriteCSV (or hand-authored in the
// same format).
func ReadCSV(r io.Reader) (Dataset, error) {
	cr := csv.NewReader(r)
	names, err := cr.Read()
	if err != nil {
		return Dataset{}, fmt.Errorf("datagen: reading header: %w", err)
	}
	capsRow, err := cr.Read()
	if err != nil {
		return Dataset{}, fmt.Errorf("datagen: reading capability row: %w", err)
	}
	if len(capsRow) != len(names) {
		return Dataset{}, fmt.Errorf("datagen: header has %d names but %d capabilities", len(names), len(capsRow))
	}
	var d Dataset
	var rankCols []int
	for i, name := range names {
		if strings.HasPrefix(name, "#") {
			d.FilterNames = append(d.FilterNames, strings.TrimPrefix(name, "#"))
			continue
		}
		c, err := ParseCapability(capsRow[i])
		if err != nil {
			return Dataset{}, fmt.Errorf("datagen: column %q: %w", name, err)
		}
		d.Attrs = append(d.Attrs, Attr{Name: name, Cap: c})
		rankCols = append(rankCols, i)
	}
	filterCols := make([]int, 0, len(d.FilterNames))
	for i, name := range names {
		if strings.HasPrefix(name, "#") {
			filterCols = append(filterCols, i)
		}
	}
	line := 2
	for {
		row, err := cr.Read()
		if err == io.EOF {
			break
		}
		line++
		if err != nil {
			return Dataset{}, fmt.Errorf("datagen: line %d: %w", line, err)
		}
		if len(row) != len(names) {
			return Dataset{}, fmt.Errorf("datagen: line %d has %d fields, want %d", line, len(row), len(names))
		}
		t := make([]int, len(rankCols))
		for j, col := range rankCols {
			v, err := strconv.Atoi(strings.TrimSpace(row[col]))
			if err != nil {
				return Dataset{}, fmt.Errorf("datagen: line %d, column %q: %w", line, names[col], err)
			}
			t[j] = v
		}
		d.Data = append(d.Data, t)
		if len(filterCols) > 0 {
			f := make([]string, len(filterCols))
			for j, col := range filterCols {
				f[j] = row[col]
			}
			d.Filters = append(d.Filters, f)
		}
	}
	if len(d.Data) == 0 {
		return Dataset{}, fmt.Errorf("datagen: CSV contains no data rows")
	}
	return d, nil
}

// ParseCapability parses "SQ", "RQ" or "PQ" (case-insensitive).
func ParseCapability(s string) (hidden.Capability, error) {
	switch strings.ToUpper(strings.TrimSpace(s)) {
	case "SQ":
		return hidden.SQ, nil
	case "RQ":
		return hidden.RQ, nil
	case "PQ":
		return hidden.PQ, nil
	}
	return 0, fmt.Errorf("unknown capability %q (want SQ, RQ or PQ)", s)
}
