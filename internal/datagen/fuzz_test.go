package datagen

import (
	"bytes"
	"testing"
)

// FuzzReadCSV hardens the dataset parser against malformed input: it must
// return an error or a structurally consistent dataset, never panic.
func FuzzReadCSV(f *testing.F) {
	var seed bytes.Buffer
	_ = GoogleFlightsRoute(1).WriteCSV(&seed)
	f.Add(seed.Bytes())
	f.Add([]byte("A,B\nRQ,PQ\n1,2\n"))
	f.Add([]byte("A,#F\nSQ,-\n3,x\n"))
	f.Add([]byte(""))
	f.Add([]byte("A\nXX\n1\n"))
	f.Fuzz(func(t *testing.T, data []byte) {
		d, err := ReadCSV(bytes.NewReader(data))
		if err != nil {
			return
		}
		if len(d.Data) == 0 || len(d.Attrs) == 0 {
			t.Fatalf("parser returned empty dataset without error")
		}
		m := len(d.Attrs)
		for i, tup := range d.Data {
			if len(tup) != m {
				t.Fatalf("row %d has %d values, want %d", i, len(tup), m)
			}
		}
		if d.Filters != nil && len(d.Filters) != len(d.Data) {
			t.Fatalf("filters misaligned: %d vs %d", len(d.Filters), len(d.Data))
		}
		// Round-trip: what we parsed must serialize and re-parse equal.
		var buf bytes.Buffer
		if err := d.WriteCSV(&buf); err != nil {
			t.Fatalf("re-serialize: %v", err)
		}
		back, err := ReadCSV(&buf)
		if err != nil {
			t.Fatalf("re-parse: %v", err)
		}
		if len(back.Data) != len(d.Data) {
			t.Fatalf("round trip changed row count")
		}
	})
}
