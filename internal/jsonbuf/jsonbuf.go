// Package jsonbuf is the shared pooled JSON response writer of the HTTP
// serving layers (internal/web, internal/service). Encoding into a
// pooled buffer instead of streaming straight to the ResponseWriter
// does two things for the hot endpoints (/v1/search, /v1/answer/topk):
//
//   - the response body's growth allocations are paid once per pool
//     entry instead of once per request (the dominant per-request
//     garbage of a JSON API under load), and
//   - the body is complete before the status line is written, so an
//     encoding failure can still answer a well-formed 500 envelope
//     instead of a truncated 200.
//
// Static bodies (a database's /v1/meta never changes) skip encoding
// entirely via WriteStatic.
package jsonbuf

import (
	"bytes"
	"encoding/json"
	"net/http"
	"sync"
)

// maxPooledBuf caps the capacity of buffers returned to the pool: one
// pathological multi-megabyte response must not pin its buffer for the
// life of the process.
const maxPooledBuf = 1 << 20

var pool = sync.Pool{New: func() any { return new(bytes.Buffer) }}

// Write encodes v as JSON and writes it with the given status. The
// encoding buffer is pooled; the response is identical to
// json.NewEncoder(w).Encode(v) on the success path (including the
// trailing newline).
func Write(w http.ResponseWriter, status int, v any) {
	buf := pool.Get().(*bytes.Buffer)
	buf.Reset()
	if err := json.NewEncoder(buf).Encode(v); err != nil {
		buf.Reset()
		status = http.StatusInternalServerError
		_ = json.NewEncoder(buf).Encode(map[string]string{"error": "encoding response: " + err.Error()})
	}
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	w.WriteHeader(status)
	_, _ = w.Write(buf.Bytes())
	if buf.Cap() <= maxPooledBuf {
		pool.Put(buf)
	}
}

// WriteStatic writes a pre-encoded JSON body (see Encode) — zero
// per-request encoding work for immutable responses.
func WriteStatic(w http.ResponseWriter, status int, body []byte) {
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	w.WriteHeader(status)
	_, _ = w.Write(body)
}

// Encode renders v once for WriteStatic, with the same framing Write
// produces (trailing newline included).
func Encode(v any) ([]byte, error) {
	var buf bytes.Buffer
	if err := json.NewEncoder(&buf).Encode(v); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}
