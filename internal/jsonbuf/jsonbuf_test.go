package jsonbuf

import (
	"encoding/json"
	"math"
	"net/http/httptest"
	"testing"
)

func TestWriteMatchesStreamingEncoder(t *testing.T) {
	v := map[string]any{"tuples": [][]int{{1, 2}, {3, 4}}, "exact": true}
	rec := httptest.NewRecorder()
	Write(rec, 201, v)
	if rec.Code != 201 {
		t.Fatalf("status %d", rec.Code)
	}
	if ct := rec.Header().Get("Content-Type"); ct != "application/json; charset=utf-8" {
		t.Fatalf("content type %q", ct)
	}
	want, _ := json.Marshal(v)
	if got := rec.Body.String(); got != string(want)+"\n" {
		t.Fatalf("body %q, want %q + newline", got, want)
	}
}

func TestWriteEncodableErrorAnswers500Envelope(t *testing.T) {
	rec := httptest.NewRecorder()
	Write(rec, 200, math.NaN()) // JSON cannot encode NaN
	if rec.Code != 500 {
		t.Fatalf("status %d, want 500", rec.Code)
	}
	var env map[string]string
	if err := json.Unmarshal(rec.Body.Bytes(), &env); err != nil || env["error"] == "" {
		t.Fatalf("expected an error envelope, got %q (%v)", rec.Body.String(), err)
	}
}

func TestEncodeAndWriteStatic(t *testing.T) {
	body, err := Encode(map[string]int{"k": 5})
	if err != nil {
		t.Fatal(err)
	}
	rec := httptest.NewRecorder()
	WriteStatic(rec, 200, body)
	if rec.Body.String() != "{\"k\":5}\n" {
		t.Fatalf("body %q", rec.Body.String())
	}
	if ct := rec.Header().Get("Content-Type"); ct != "application/json; charset=utf-8" {
		t.Fatalf("content type %q", ct)
	}
	if _, err := Encode(math.Inf(1)); err == nil {
		t.Fatal("Encode accepted an unencodable value")
	}
}

func TestWriteReusesPooledBuffers(t *testing.T) {
	v := map[string]any{"x": []int{1, 2, 3}}
	rec := httptest.NewRecorder()
	Write(rec, 200, v) // warm the pool
	allocs := testing.AllocsPerRun(100, func() {
		rec := httptest.NewRecorder()
		Write(rec, 200, v)
	})
	// The recorder, header map and encoder dominate; the point is that
	// the body buffer itself no longer grows per call. Guard against
	// regression to per-call buffer growth (which costs tens of allocs
	// for any realistically sized response).
	if allocs > 15 {
		t.Fatalf("Write allocates %v per op — pooled buffer regressed", allocs)
	}
}
