// Package web puts the "web" back into hidden web database: it serves a
// hidden.DB over HTTP as a JSON search API with the exact same top-k
// semantics, capability enforcement and rate limiting as the in-process
// simulator, and provides a client that implements core.Interface against
// such an endpoint. Discovery algorithms run unmodified against a remote
// database — over a unix socket, localhost, or the open network.
//
// Wire protocol (versioned under /v1):
//
//	GET  /v1/meta                 -> {attrs:[{name,cap,lo,hi}], k}
//	POST /v1/search {preds:[...]} -> {tuples:[[...]], overflow, filters?}
//
// A predicate is {attr, op, value} with op in "<", "<=", "=", ">=", ">".
// Unsupported predicates answer 400; an exhausted rate limit answers 429.
package web

import (
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"net/http"
	"strconv"
	"time"

	"hiddensky/internal/hidden"
	"hiddensky/internal/jsonbuf"
	"hiddensky/internal/obs"
	"hiddensky/internal/query"
)

// MetaResponse describes the searchable schema of the served database.
type MetaResponse struct {
	Attrs []MetaAttr `json:"attrs"`
	K     int        `json:"k"`
}

// MetaAttr is one ranking attribute: its display name, capability
// ("SQ"/"RQ"/"PQ") and advertised value range.
type MetaAttr struct {
	Name string `json:"name"`
	Cap  string `json:"cap"`
	Lo   int    `json:"lo"`
	Hi   int    `json:"hi"`
}

// WirePredicate is the JSON form of one conjunctive predicate.
type WirePredicate struct {
	Attr  int    `json:"attr"`
	Op    string `json:"op"`
	Value int    `json:"value"`
}

// SearchRequest is the body of POST /v1/search.
type SearchRequest struct {
	Preds []WirePredicate `json:"preds"`
}

// SearchResponse is the top-k answer.
type SearchResponse struct {
	Tuples   [][]int    `json:"tuples"`
	Overflow bool       `json:"overflow"`
	Filters  [][]string `json:"filters,omitempty"`
}

// errorResponse is the JSON error envelope.
type errorResponse struct {
	Error string `json:"error"`
}

// Server serves one hidden database.
type Server struct {
	db    *hidden.DB
	names []string
	mux   *http.ServeMux
	// meta is the pre-encoded /v1/meta body: the schema of an immutable
	// database never changes, so it is rendered once at construction and
	// served as static bytes.
	meta []byte

	// Request telemetry, exposed on GET /metrics (Prometheus text) and
	// GET /v1/stats (JSON). The registry is the server's own, so many
	// Servers in one process never collide.
	reg           *obs.Registry
	searches      *obs.Counter
	rateLimited   *obs.Counter
	metaRequests  *obs.Counter
	searchSeconds *obs.Histogram

	// Time-series and health layer: the sampler rings every registry
	// series for GET /v1/history; the rollup derives ready/degraded
	// for GET /healthz and GET /readyz. The server constructs both but
	// does not start the sampling loop — the embedding daemon calls
	// StartSampler so tests and library users never leak a goroutine.
	sampler *obs.Sampler
	health  *obs.HealthRollup

	log *slog.Logger // nil until SetLogger; access lines for searches
}

// SetLogger attaches a structured logger; the server then writes one
// access-log line per search answer (200 and 429), echoing the
// client's X-Trace-Id so daemon logs on both sides of the wire
// correlate on one id. Call before serving.
func (s *Server) SetLogger(log *slog.Logger) { s.log = log }

// logSearch writes the access-log line for one search answer.
func (s *Server) logSearch(r *http.Request, status, tuples int, d time.Duration) {
	if s.log == nil {
		return
	}
	s.log.Info("search",
		"status", status,
		"tuples", tuples,
		"dur_us", d.Microseconds(),
		"trace_id", r.Header.Get("X-Trace-Id"),
		"remote", r.RemoteAddr,
	)
}

// NewServer wraps db; names optionally labels the attributes (padded with
// A0, A1, ... when short).
func NewServer(db *hidden.DB, names []string) *Server {
	s := &Server{db: db}
	for i := 0; i < db.NumAttrs(); i++ {
		if i < len(names) && names[i] != "" {
			s.names = append(s.names, names[i])
		} else {
			s.names = append(s.names, fmt.Sprintf("A%d", i))
		}
	}
	meta := MetaResponse{K: db.K()}
	for i := 0; i < db.NumAttrs(); i++ {
		dom := db.Domain(i)
		meta.Attrs = append(meta.Attrs, MetaAttr{
			Name: s.names[i],
			Cap:  db.Cap(i).String(),
			Lo:   dom.Lo,
			Hi:   dom.Hi,
		})
	}
	s.meta, _ = jsonbuf.Encode(meta)
	s.reg = obs.NewRegistry()
	s.searches = s.reg.Counter("search_requests_total", "search requests answered with a top-k result (HTTP 200)")
	s.rateLimited = s.reg.Counter("search_rate_limited_total", "search requests rejected by the rate limiter (HTTP 429)")
	s.metaRequests = s.reg.Counter("meta_requests_total", "schema fetches served")
	s.searchSeconds = s.reg.Histogram("search_seconds", "latency of successfully answered search requests")
	obs.RegisterRuntime(s.reg)
	s.sampler = obs.NewSampler(s.reg, obs.SamplerConfig{})
	// A standalone search server has no recovery phase: the gate opens
	// at construction, and health degrades only on sustained 429s.
	s.health = obs.NewHealthRollup("")
	s.health.SetReady()
	s.health.AddCheck("search_429_rate", DefaultMax429Rate, func() float64 {
		return s.sampler.Rate("search_rate_limited_total", time.Minute)
	})
	s.mux = http.NewServeMux()
	s.mux.HandleFunc("GET /v1/meta", s.handleMeta)
	s.mux.HandleFunc("POST /v1/search", s.handleSearch)
	s.mux.Handle("GET /metrics", obs.MetricsHandler(s.reg))
	s.mux.HandleFunc("GET /v1/stats", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, s.reg.Snapshots())
	})
	s.mux.HandleFunc("GET /v1/history", s.handleHistory)
	s.mux.Handle("GET /healthz", obs.HealthzHandler(s.health))
	s.mux.Handle("GET /readyz", obs.ReadyzHandler(s.health))
	// Errors outside the handlers answer the same JSON envelope as
	// 400/429 — API clients should never have to parse a plain-text
	// body. A method-less pattern ranks below the method-qualified one
	// for the right verb, so it catches exactly the wrong-method
	// requests (405, keeping the Allow header the mux would have sent);
	// the "/" fallback catches unknown paths (404).
	methodNotAllowed := func(allow string) http.HandlerFunc {
		return func(w http.ResponseWriter, r *http.Request) {
			w.Header().Set("Allow", allow)
			writeJSON(w, http.StatusMethodNotAllowed, errorResponse{
				Error: fmt.Sprintf("web: method %s not allowed on %s (allow: %s)", r.Method, r.URL.Path, allow)})
		}
	}
	s.mux.HandleFunc("/v1/meta", methodNotAllowed("GET, HEAD"))
	s.mux.HandleFunc("/v1/search", methodNotAllowed("POST"))
	s.mux.HandleFunc("/metrics", methodNotAllowed("GET, HEAD"))
	s.mux.HandleFunc("/v1/stats", methodNotAllowed("GET, HEAD"))
	s.mux.HandleFunc("/v1/history", methodNotAllowed("GET, HEAD"))
	s.mux.HandleFunc("/healthz", methodNotAllowed("GET, HEAD"))
	s.mux.HandleFunc("/readyz", methodNotAllowed("GET, HEAD"))
	s.mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusNotFound, errorResponse{Error: fmt.Sprintf("web: no such endpoint %s %s", r.Method, r.URL.Path)})
	})
	return s
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mux.ServeHTTP(w, r)
}

// Registry exposes the server's metrics registry, so an embedding
// daemon can graft extra series (e.g. process info) onto /metrics.
func (s *Server) Registry() *obs.Registry { return s.reg }

// DefaultMax429Rate is the search_429_rate health threshold: sustained
// rate-limit rejections above one per second over the trailing minute
// mark the server degraded.
const DefaultMax429Rate = 1.0

// ConfigureSampler replaces the server's sampler (interval/retention
// flag wiring). Call before StartSampler; the health checks re-bind to
// the new sampler automatically because they close over s.sampler.
func (s *Server) ConfigureSampler(cfg obs.SamplerConfig) {
	s.sampler = obs.NewSampler(s.reg, cfg)
}

// StartSampler launches the background sampling loop and returns the
// function that stops it. Daemons call this once after flag wiring.
func (s *Server) StartSampler() (stop func()) {
	s.sampler.Start()
	return s.sampler.Stop
}

// Sampler exposes the time-series layer (tests, embedding daemons).
func (s *Server) Sampler() *obs.Sampler { return s.sampler }

// Health exposes the rollup so daemons can tune thresholds via flags.
func (s *Server) Health() *obs.HealthRollup { return s.health }

// handleHistory serves the retained time-series rings. ?last=N bounds
// the trailing samples per series.
func (s *Server) handleHistory(w http.ResponseWriter, r *http.Request) {
	last := 0
	if v := r.URL.Query().Get("last"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 0 {
			writeJSON(w, http.StatusBadRequest, errorResponse{Error: fmt.Sprintf("web: bad last=%q (want a non-negative integer)", v)})
			return
		}
		last = n
	}
	writeJSON(w, http.StatusOK, s.sampler.History(last))
}

func (s *Server) handleMeta(w http.ResponseWriter, r *http.Request) {
	s.metaRequests.Inc()
	jsonbuf.WriteStatic(w, http.StatusOK, s.meta)
}

func (s *Server) handleSearch(w http.ResponseWriter, r *http.Request) {
	var req SearchRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: "malformed request: " + err.Error()})
		return
	}
	q, err := decodeQuery(req.Preds)
	if err != nil {
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: err.Error()})
		return
	}
	t0 := time.Now()
	res, filters, err := s.db.QueryFull(q)
	switch {
	case errors.Is(err, hidden.ErrRateLimited):
		s.rateLimited.Inc()
		s.logSearch(r, http.StatusTooManyRequests, 0, time.Since(t0))
		w.Header().Set("Retry-After", "1")
		writeJSON(w, http.StatusTooManyRequests, errorResponse{Error: err.Error()})
		return
	case errors.Is(err, hidden.ErrUnsupportedPredicate), errors.Is(err, hidden.ErrBadQuery):
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: err.Error()})
		return
	case err != nil:
		writeJSON(w, http.StatusInternalServerError, errorResponse{Error: err.Error()})
		return
	}
	resp := SearchResponse{Overflow: res.Overflow, Filters: filters}
	resp.Tuples = res.Tuples
	if resp.Tuples == nil {
		resp.Tuples = [][]int{}
	}
	s.searches.Inc()
	s.searchSeconds.Observe(time.Since(t0))
	s.logSearch(r, http.StatusOK, len(resp.Tuples), time.Since(t0))
	writeJSON(w, http.StatusOK, resp)
}

// writeJSON answers v through the shared pooled encoder: /v1/search is
// the serving hot path, and per-request encoder garbage is what caps
// its throughput under load.
func writeJSON(w http.ResponseWriter, status int, v any) {
	jsonbuf.Write(w, status, v)
}

// decodeQuery converts wire predicates into the internal query form.
func decodeQuery(preds []WirePredicate) (query.Q, error) {
	var q query.Q
	for _, p := range preds {
		op, err := parseOp(p.Op)
		if err != nil {
			return nil, err
		}
		q = append(q, query.Predicate{Attr: p.Attr, Op: op, Value: p.Value})
	}
	return q, nil
}

func parseOp(s string) (query.Op, error) {
	switch s {
	case "<":
		return query.LT, nil
	case "<=":
		return query.LE, nil
	case "=", "==":
		return query.EQ, nil
	case ">=":
		return query.GE, nil
	case ">":
		return query.GT, nil
	}
	return 0, fmt.Errorf("web: unknown operator %q", s)
}

func encodeOp(op query.Op) string {
	switch op {
	case query.LT:
		return "<"
	case query.LE:
		return "<="
	case query.EQ:
		return "="
	case query.GE:
		return ">="
	case query.GT:
		return ">"
	}
	return "?"
}
