package web

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"

	"hiddensky/internal/hidden"
	"hiddensky/internal/query"
)

// Client implements core.Interface against a remote hidden-database
// endpoint served by Server. The discovery algorithms run against it
// unchanged — every Query is one HTTP round trip, mirroring what a real
// third-party service pays per search request.
type Client struct {
	base string
	http *http.Client

	k       int
	caps    []hidden.Capability
	domains []query.Interval
	names   []string
	queries int
}

// Dial fetches the remote schema and returns a ready client. httpClient
// may be nil (http.DefaultClient).
func Dial(baseURL string, httpClient *http.Client) (*Client, error) {
	if httpClient == nil {
		httpClient = http.DefaultClient
	}
	c := &Client{base: strings.TrimRight(baseURL, "/"), http: httpClient}
	resp, err := c.http.Get(c.base + "/v1/meta")
	if err != nil {
		return nil, fmt.Errorf("web: fetching meta: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("web: meta endpoint answered %s", resp.Status)
	}
	var meta MetaResponse
	if err := json.NewDecoder(resp.Body).Decode(&meta); err != nil {
		return nil, fmt.Errorf("web: decoding meta: %w", err)
	}
	if meta.K < 1 || len(meta.Attrs) == 0 {
		return nil, fmt.Errorf("web: implausible meta: k=%d, %d attributes", meta.K, len(meta.Attrs))
	}
	c.k = meta.K
	for _, a := range meta.Attrs {
		cap, err := parseCap(a.Cap)
		if err != nil {
			return nil, err
		}
		c.caps = append(c.caps, cap)
		c.domains = append(c.domains, query.Interval{Lo: a.Lo, Hi: a.Hi})
		c.names = append(c.names, a.Name)
	}
	return c, nil
}

// Query implements core.Interface with one HTTP search request.
func (c *Client) Query(q query.Q) (hidden.Result, error) {
	req := SearchRequest{}
	for _, p := range q {
		req.Preds = append(req.Preds, WirePredicate{Attr: p.Attr, Op: encodeOp(p.Op), Value: p.Value})
	}
	body, err := json.Marshal(req)
	if err != nil {
		return hidden.Result{}, err
	}
	resp, err := c.http.Post(c.base+"/v1/search", "application/json", bytes.NewReader(body))
	if err != nil {
		return hidden.Result{}, fmt.Errorf("web: search request: %w", err)
	}
	defer resp.Body.Close()
	switch resp.StatusCode {
	case http.StatusOK:
	case http.StatusTooManyRequests:
		return hidden.Result{}, fmt.Errorf("%w: remote answered 429", hidden.ErrRateLimited)
	case http.StatusBadRequest:
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return hidden.Result{}, fmt.Errorf("%w: %s", hidden.ErrUnsupportedPredicate, strings.TrimSpace(string(msg)))
	default:
		return hidden.Result{}, fmt.Errorf("web: search answered %s", resp.Status)
	}
	var sr SearchResponse
	if err := json.NewDecoder(resp.Body).Decode(&sr); err != nil {
		return hidden.Result{}, fmt.Errorf("web: decoding search response: %w", err)
	}
	c.queries++
	return hidden.Result{Tuples: sr.Tuples, Overflow: sr.Overflow}, nil
}

// NumAttrs implements core.Interface.
func (c *Client) NumAttrs() int { return len(c.caps) }

// K implements core.Interface.
func (c *Client) K() int { return c.k }

// Cap implements core.Interface.
func (c *Client) Cap(i int) hidden.Capability { return c.caps[i] }

// Domain implements core.Interface.
func (c *Client) Domain(i int) query.Interval { return c.domains[i] }

// AttrName returns the remote display name of attribute i.
func (c *Client) AttrName(i int) string { return c.names[i] }

// QueriesIssued counts successful search requests sent by this client.
func (c *Client) QueriesIssued() int { return c.queries }

func parseCap(s string) (hidden.Capability, error) {
	switch strings.ToUpper(strings.TrimSpace(s)) {
	case "SQ":
		return hidden.SQ, nil
	case "RQ":
		return hidden.RQ, nil
	case "PQ":
		return hidden.PQ, nil
	}
	return 0, fmt.Errorf("web: unknown capability %q in remote meta", s)
}
