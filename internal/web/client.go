package web

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"hiddensky/internal/hidden"
	"hiddensky/internal/obs"
	"hiddensky/internal/query"
	"hiddensky/internal/retry"
)

// DefaultRetryBackoff is the first backoff of the default retry policy
// when the server sends no Retry-After header (kept for compatibility
// with SetRetryBackoff; see SetRetryPolicy for full control).
const DefaultRetryBackoff = 250 * time.Millisecond

// maxRetryAfter caps how long Query honors a server-provided Retry-After.
const maxRetryAfter = 5 * time.Second

// RateLimitError reports that the remote endpoint kept rate-limiting the
// client until its retry policy gave up. It unwraps to
// hidden.ErrRateLimited, so errors.Is(err, hiddensky.ErrRateLimited) holds
// and the discovery algorithms treat it as their anytime budget stop.
type RateLimitError struct {
	// RetryAfter is the server-suggested wait (zero when not advertised).
	RetryAfter time.Duration
	// Attempts is how many round trips answered 429 before giving up.
	Attempts int
}

func (e *RateLimitError) Error() string {
	n := e.Attempts
	if n < 1 {
		n = 2
	}
	if e.RetryAfter > 0 {
		return fmt.Sprintf("web: remote answered 429 %d times (retry after %v)", n, e.RetryAfter)
	}
	return fmt.Sprintf("web: remote answered 429 %d times", n)
}

func (e *RateLimitError) Unwrap() error { return hidden.ErrRateLimited }

// RetryAfterHint implements retry.AfterHinter.
func (e *RateLimitError) RetryAfterHint() time.Duration { return e.RetryAfter }

// TransientError reports that the upstream stayed transiently broken —
// 5xx answers, connection resets, truncated bodies, per-attempt timeouts
// — for every attempt the retry policy allowed. It wraps the last
// attempt's error, whose chain includes retry.ErrUnavailable, so callers
// distinguish "upstream on fire" (park, trip the breaker) from a rate
// limit (anytime budget stop) and from fatal protocol errors.
type TransientError struct {
	// Attempts is how many round trips were tried.
	Attempts int
	// Err is the last attempt's failure.
	Err error
}

func (e *TransientError) Error() string {
	return fmt.Sprintf("web: upstream unavailable after %d attempts: %v", e.Attempts, e.Err)
}

func (e *TransientError) Unwrap() error { return e.Err }

// Client implements core.Interface against a remote hidden-database
// endpoint served by Server. The discovery algorithms run against it
// unchanged — every Query is one HTTP round trip, mirroring what a real
// third-party service pays per search request. A Client is safe for
// concurrent use: the parallel executor and federated fleets may share
// one, reusing its keep-alive connections.
type Client struct {
	base string
	http *http.Client
	ctx  context.Context // nil: requests are not bound to a context

	k       int
	caps    []hidden.Capability
	domains []query.Interval
	names   []string
	queries *atomic.Int64
	policy  *atomic.Pointer[retry.Policy] // nil entry = default policy
	jmu     *sync.Mutex                   // guards jrng (shared by views)
	jrng    *rand.Rand                    // backoff jitter stream
	metrics *ClientMetrics                // nil: uninstrumented; shared by WithContext views

	name       string      // store label for span annotations ("" ok)
	tracer     *obs.Tracer // nil: untraced (see WithTrace)
	spanParent uint64      // span id query spans hang under
	traceID    string      // sent as X-Trace-Id when non-empty
}

// ClientMetrics instruments a Client's upstream traffic. All fields
// are optional; recording is atomic, adding no allocation to the
// query path.
type ClientMetrics struct {
	// Queries counts search round trips answered 200 (the queries the
	// upstream actually served — cache hits never reach here).
	Queries *obs.Counter
	// RateLimited counts 429 answers (each retried attempt contributes
	// one).
	RateLimited *obs.Counter
	// Retries counts backoff-and-retry cycles (after a 429 or a
	// transient failure).
	Retries *obs.Counter
	// Unavailable counts transient upstream failures: 5xx answers,
	// connection resets, truncated bodies, per-attempt timeouts.
	Unavailable *obs.Counter
	// RetryAttempts observes how many retries each upstream query needed
	// before success or give-up (0 on the happy path; recorded as "1ns
	// == 1 retry").
	RetryAttempts *obs.Histogram
	// QuerySeconds observes the latency of successful search round trips.
	QuerySeconds *obs.Histogram
}

// NewClientMetrics registers a client's metric set on r, labelling every
// series with the store name (so one registry serves many upstreams).
func NewClientMetrics(r *obs.Registry, store string) *ClientMetrics {
	l := `{store="` + obs.EscapeLabel(store) + `"}`
	return &ClientMetrics{
		Queries:       r.Counter("upstream_queries_total"+l, "search queries answered by the upstream (HTTP 200)"),
		RateLimited:   r.Counter("upstream_rate_limited_total"+l, "HTTP 429 answers from the upstream"),
		Retries:       r.Counter("upstream_retries_total"+l, "backoff-and-retry cycles after a 429 or transient failure"),
		Unavailable:   r.Counter("upstream_unavailable_total"+l, "transient upstream failures (5xx, resets, truncated bodies, timeouts)"),
		RetryAttempts: r.Histogram("upstream_retry_attempts"+l, "retries needed per upstream query (1ns == 1 retry)"),
		QuerySeconds:  r.Histogram("upstream_query_seconds"+l, "latency of successful upstream search round trips"),
	}
}

// SetMetrics attaches metrics to the client. Call it right after Dial,
// before the client is shared across goroutines; views made later by
// WithContext inherit the same bundle, so per-job handles keep feeding
// the daemon-wide series.
func (c *Client) SetMetrics(m *ClientMetrics) { c.metrics = m }

// SetName labels the client with its store name; traced query spans
// carry it as their "store" attribute. Call it alongside SetMetrics,
// before the client is shared; WithContext/WithTrace views inherit it.
func (c *Client) SetName(name string) { c.name = name }

// Dial fetches the remote schema and returns a ready client. httpClient
// may be nil (http.DefaultClient).
func Dial(baseURL string, httpClient *http.Client) (*Client, error) {
	if httpClient == nil {
		httpClient = http.DefaultClient
	}
	c := &Client{
		base:    strings.TrimRight(baseURL, "/"),
		http:    httpClient,
		queries: new(atomic.Int64),
		policy:  new(atomic.Pointer[retry.Policy]),
		jmu:     new(sync.Mutex),
		jrng:    rand.New(rand.NewSource(rand.Int63())),
	}
	resp, err := c.http.Get(c.base + "/v1/meta")
	if err != nil {
		return nil, fmt.Errorf("web: fetching meta: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("web: meta endpoint answered %s", resp.Status)
	}
	var meta MetaResponse
	if err := json.NewDecoder(resp.Body).Decode(&meta); err != nil {
		return nil, fmt.Errorf("web: decoding meta: %w", err)
	}
	if meta.K < 1 || len(meta.Attrs) == 0 {
		return nil, fmt.Errorf("web: implausible meta: k=%d, %d attributes", meta.K, len(meta.Attrs))
	}
	c.k = meta.K
	for _, a := range meta.Attrs {
		cap, err := parseCap(a.Cap)
		if err != nil {
			return nil, err
		}
		c.caps = append(c.caps, cap)
		c.domains = append(c.domains, query.Interval{Lo: a.Lo, Hi: a.Hi})
		c.names = append(c.names, a.Name)
	}
	return c, nil
}

// SetRetryPolicy installs a full retry policy (attempts, exponential
// backoff, jitter, per-attempt timeout, Retry-After cap). Call it before
// the client is shared; WithContext/WithTrace views read the same
// policy. The zero Policy means all defaults.
func (c *Client) SetRetryPolicy(p retry.Policy) {
	p = p.Normalize()
	c.policy.Store(&p)
}

// SetRetryBackoff overrides the first backoff between attempts
// (DefaultRetryBackoff when unset; a server Retry-After still wins) and
// pins jitter off, preserving the pre-policy fixed-wait behaviour. Use
// SetRetryPolicy for full control.
func (c *Client) SetRetryBackoff(d time.Duration) {
	p := c.retryPolicy()
	p.BaseBackoff = d
	p.NoJitter = true
	p.Jitter = 0
	c.policy.Store(&p)
}

// retryPolicy returns the active normalized policy.
func (c *Client) retryPolicy() retry.Policy {
	if p := c.policy.Load(); p != nil {
		return *p
	}
	return retry.Policy{BaseBackoff: DefaultRetryBackoff, RetryAfterCap: maxRetryAfter}.Normalize()
}

// jitter draws from the shared backoff-jitter stream.
func (c *Client) jitter() float64 {
	c.jmu.Lock()
	defer c.jmu.Unlock()
	return c.jrng.Float64()
}

// WithContext returns a view of the client whose requests (and 429
// backoff waits) are aborted when ctx is cancelled. The view shares the
// underlying HTTP client, schema and query counter, so a long-lived
// client can hand each job its own cancellable handle — exactly what a
// discovery service needs to stop a killed job from issuing further
// upstream queries.
func (c *Client) WithContext(ctx context.Context) *Client {
	d := *c
	d.ctx = ctx
	return &d
}

// WithTrace returns a view of the client that records one "web.query"
// span per counted upstream query (store, canonical-key fingerprint,
// tuples returned, HTTP status, retries, latency) under parent, and
// stamps every search request with the trace's id as an X-Trace-Id
// header so the server's access log correlates with this job. The
// view shares the HTTP client, schema and query counter, exactly like
// WithContext.
func (c *Client) WithTrace(t *obs.Tracer, parent uint64) *Client {
	d := *c
	d.tracer = t
	d.spanParent = parent
	d.traceID = t.TraceID()
	return &d
}

// reqCtx is the context requests are issued under.
func (c *Client) reqCtx() context.Context {
	if c.ctx != nil {
		return c.ctx
	}
	return context.Background()
}

// Query implements core.Interface with one HTTP search request, retried
// under the client's retry policy (SetRetryPolicy; defaults otherwise).
// Recoverable failures — 429s, 5xx answers, connection resets, truncated
// bodies, per-attempt timeouts — back off exponentially with jitter, a
// server Retry-After always winning over the computed wait; transient
// trouble is the norm mid-discovery and a raw error would abort an
// otherwise healthy run. Once the policy's attempts are spent, a
// persistent 429 returns a *RateLimitError (errors.Is-matches
// hiddensky.ErrRateLimited, discovery's anytime budget stop) and a
// persistent transient failure returns a *TransientError (errors.Is-
// matches retry.ErrUnavailable, the service layer's park-and-break
// signal). Retrying never double-counts: a failed attempt returned no
// data, so the eventual answer is the one a clean upstream would have
// given.
func (c *Client) Query(q query.Q) (hidden.Result, error) {
	req := SearchRequest{}
	for _, p := range q {
		req.Preds = append(req.Preds, WirePredicate{Attr: p.Attr, Op: encodeOp(p.Op), Value: p.Value})
	}
	body, err := json.Marshal(req)
	if err != nil {
		return hidden.Result{}, err
	}
	pol := c.retryPolicy()
	// One span per counted upstream query: it opens before the first
	// attempt so its latency covers every backoff, Ends as "web.query"
	// only when the upstream answered 200 (keeping the span count
	// exactly equal to the counted queries), is renamed
	// "web.rate_limited" / "web.unavailable" for terminal give-ups, and
	// is abandoned (never recorded) on fatal protocol errors.
	sp := c.tracer.Start("web.query", c.spanParent)
	if c.tracer != nil {
		if c.name != "" {
			sp.SetStr("store", c.name)
		}
		sp.SetInt("key", int64(c.queryKey(q)))
	}
	var retries int64
	for attempt := 1; ; attempt++ {
		res, retryAfter, err := c.search(body, pol.PerAttemptTimeout)
		if err == nil {
			c.observeRetries(retries)
			c.endQuerySpan(&sp, &res, retries)
			return res, nil
		}
		rateLimited := isRateLimited(err)
		if !rateLimited && !retry.Transient(err) {
			return res, err
		}
		if attempt >= pol.Attempts {
			c.observeRetries(retries)
			if rateLimited {
				sp.Rename("web.rate_limited")
				sp.SetInt("status", http.StatusTooManyRequests)
				sp.SetInt("retries", retries)
				sp.End()
				return hidden.Result{}, &RateLimitError{RetryAfter: retryAfter, Attempts: attempt}
			}
			sp.Rename("web.unavailable")
			sp.SetInt("retries", retries)
			sp.End()
			return hidden.Result{}, &TransientError{Attempts: attempt, Err: err}
		}
		if m := c.metrics; m != nil && m.Retries != nil {
			m.Retries.Inc()
		}
		wait := pol.Backoff(attempt, retryAfter, c.jitter)
		if serr := sleepCtx(c.ctx, wait); serr != nil {
			return hidden.Result{}, fmt.Errorf("web: aborted while backing off: %w", serr)
		}
		retries++
	}
}

// observeRetries feeds the upstream_retry_attempts histogram.
func (c *Client) observeRetries(retries int64) {
	if m := c.metrics; m != nil && m.RetryAttempts != nil {
		m.RetryAttempts.Observe(time.Duration(retries))
	}
}

// endQuerySpan finishes a successful query's span.
func (c *Client) endQuerySpan(sp *obs.Span, res *hidden.Result, retries int64) {
	sp.SetInt("tuples", int64(len(res.Tuples)))
	sp.SetInt("status", http.StatusOK)
	sp.SetInt("retries", retries)
	sp.End()
}

// queryKey fingerprints the query's canonical box under the remote
// domains (FNV-1a over the interval bounds) — the same identity the
// shared cache keys on, so a trace reader can tie a web.query span to
// the qcache.lookup that missed. Computed only on traced queries.
func (c *Client) queryKey(q query.Q) uint64 {
	const keyStackAttrs = 16
	var ivArr [keyStackAttrs]query.Interval
	scratch := ivArr[:0]
	if len(c.domains) > keyStackAttrs {
		scratch = nil
	}
	box := q.CanonicalizeInto(scratch, c.domains)
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for _, iv := range box.Dims {
		h ^= uint64(int64(iv.Lo))
		h *= prime64
		h ^= uint64(int64(iv.Hi))
		h *= prime64
	}
	return h
}

// errRemoteRateLimited marks a single 429 answer internally.
var errRemoteRateLimited = fmt.Errorf("%w: remote answered 429", hidden.ErrRateLimited)

func isRateLimited(err error) bool {
	return err == errRemoteRateLimited
}

// transientf builds a retryable error (wrapping retry.ErrUnavailable)
// and counts it on the Unavailable series.
func (c *Client) transientf(format string, args ...any) error {
	if m := c.metrics; m != nil && m.Unavailable != nil {
		m.Unavailable.Inc()
	}
	return fmt.Errorf("%s: %w", fmt.Sprintf(format, args...), retry.ErrUnavailable)
}

// search performs one POST /v1/search round trip, bounded by timeout
// when positive. The response body is always drained so the keep-alive
// connection can be reused by the next (possibly concurrent) query.
// Failures the retry loop may take another attempt at — transport errors
// and timeouts with the parent context still live, 5xx answers, bodies
// that fail to decode (truncated mid-payload) — wrap
// retry.ErrUnavailable; protocol errors (bad predicate, implausible
// status) stay fatal.
func (c *Client) search(body []byte, timeout time.Duration) (hidden.Result, time.Duration, error) {
	ctx := c.reqCtx()
	if timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, timeout)
		defer cancel()
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.base+"/v1/search", bytes.NewReader(body))
	if err != nil {
		return hidden.Result{}, 0, fmt.Errorf("web: building search request: %w", err)
	}
	req.Header.Set("Content-Type", "application/json")
	if c.traceID != "" {
		req.Header.Set("X-Trace-Id", c.traceID)
	}
	t0 := time.Now()
	resp, err := c.http.Do(req)
	if err != nil {
		if c.ctx != nil && c.ctx.Err() != nil {
			// The job itself was cancelled — not the upstream's fault,
			// and not worth another attempt.
			return hidden.Result{}, 0, fmt.Errorf("web: search request: %w", err)
		}
		return hidden.Result{}, 0, c.transientf("web: search request: %v", err)
	}
	defer func() {
		_, _ = io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}()
	switch {
	case resp.StatusCode == http.StatusOK:
	case resp.StatusCode == http.StatusTooManyRequests:
		if m := c.metrics; m != nil && m.RateLimited != nil {
			m.RateLimited.Inc()
		}
		return hidden.Result{}, parseRetryAfter(resp.Header.Get("Retry-After")), errRemoteRateLimited
	case resp.StatusCode == http.StatusBadRequest:
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return hidden.Result{}, 0, fmt.Errorf("%w: %s", hidden.ErrUnsupportedPredicate, strings.TrimSpace(string(msg)))
	case resp.StatusCode >= 500:
		return hidden.Result{}, 0, c.transientf("web: search answered %s", resp.Status)
	default:
		return hidden.Result{}, 0, fmt.Errorf("web: search answered %s", resp.Status)
	}
	var sr SearchResponse
	if err := json.NewDecoder(resp.Body).Decode(&sr); err != nil {
		// A decode failure on a 200 means the body was cut mid-payload
		// (or the connection dropped); the answer was never counted, so
		// another attempt is safe.
		return hidden.Result{}, 0, c.transientf("web: decoding search response: %v", err)
	}
	c.queries.Add(1)
	if m := c.metrics; m != nil {
		if m.Queries != nil {
			m.Queries.Inc()
		}
		if m.QuerySeconds != nil {
			m.QuerySeconds.Observe(time.Since(t0))
		}
	}
	return hidden.Result{Tuples: sr.Tuples, Overflow: sr.Overflow}, 0, nil
}

// sleepCtx waits for d or until ctx (when non-nil) is cancelled,
// returning the context's error in the latter case.
func sleepCtx(ctx context.Context, d time.Duration) error {
	if ctx == nil {
		time.Sleep(d)
		return nil
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// parseRetryAfter reads a seconds-valued Retry-After header, capped to
// keep a misbehaving server from stalling discovery.
func parseRetryAfter(h string) time.Duration {
	if h == "" {
		return 0
	}
	secs, err := strconv.Atoi(strings.TrimSpace(h))
	if err != nil || secs < 0 {
		return 0
	}
	d := time.Duration(secs) * time.Second
	if d > maxRetryAfter {
		d = maxRetryAfter
	}
	return d
}

// NumAttrs implements core.Interface.
func (c *Client) NumAttrs() int { return len(c.caps) }

// K implements core.Interface.
func (c *Client) K() int { return c.k }

// Cap implements core.Interface.
func (c *Client) Cap(i int) hidden.Capability { return c.caps[i] }

// Domain implements core.Interface.
func (c *Client) Domain(i int) query.Interval { return c.domains[i] }

// AttrName returns the remote display name of attribute i.
func (c *Client) AttrName(i int) string { return c.names[i] }

// QueriesIssued counts successful search requests sent by this client.
func (c *Client) QueriesIssued() int { return int(c.queries.Load()) }

func parseCap(s string) (hidden.Capability, error) {
	switch strings.ToUpper(strings.TrimSpace(s)) {
	case "SQ":
		return hidden.SQ, nil
	case "RQ":
		return hidden.RQ, nil
	case "PQ":
		return hidden.PQ, nil
	}
	return 0, fmt.Errorf("web: unknown capability %q in remote meta", s)
}
