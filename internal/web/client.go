package web

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"hiddensky/internal/hidden"
	"hiddensky/internal/obs"
	"hiddensky/internal/query"
)

// DefaultRetryBackoff is how long Query waits before its single retry of a
// 429 answer when the server sends no Retry-After header.
const DefaultRetryBackoff = 250 * time.Millisecond

// maxRetryAfter caps how long Query honors a server-provided Retry-After.
const maxRetryAfter = 5 * time.Second

// RateLimitError reports that the remote endpoint rate-limited the client
// even after the single backoff-and-retry. It unwraps to
// hidden.ErrRateLimited, so errors.Is(err, hiddensky.ErrRateLimited) holds
// and the discovery algorithms treat it as their anytime budget stop.
type RateLimitError struct {
	// RetryAfter is the server-suggested wait (zero when not advertised).
	RetryAfter time.Duration
}

func (e *RateLimitError) Error() string {
	if e.RetryAfter > 0 {
		return fmt.Sprintf("web: remote answered 429 twice (retry after %v)", e.RetryAfter)
	}
	return "web: remote answered 429 twice"
}

func (e *RateLimitError) Unwrap() error { return hidden.ErrRateLimited }

// Client implements core.Interface against a remote hidden-database
// endpoint served by Server. The discovery algorithms run against it
// unchanged — every Query is one HTTP round trip, mirroring what a real
// third-party service pays per search request. A Client is safe for
// concurrent use: the parallel executor and federated fleets may share
// one, reusing its keep-alive connections.
type Client struct {
	base string
	http *http.Client
	ctx  context.Context // nil: requests are not bound to a context

	k       int
	caps    []hidden.Capability
	domains []query.Interval
	names   []string
	queries *atomic.Int64
	backoff *atomic.Int64  // nanoseconds; 0 = DefaultRetryBackoff
	metrics *ClientMetrics // nil: uninstrumented; shared by WithContext views

	name       string      // store label for span annotations ("" ok)
	tracer     *obs.Tracer // nil: untraced (see WithTrace)
	spanParent uint64      // span id query spans hang under
	traceID    string      // sent as X-Trace-Id when non-empty
}

// ClientMetrics instruments a Client's upstream traffic. All fields
// are optional; recording is atomic, adding no allocation to the
// query path.
type ClientMetrics struct {
	// Queries counts search round trips answered 200 (the queries the
	// upstream actually served — cache hits never reach here).
	Queries *obs.Counter
	// RateLimited counts 429 answers (each backoff-and-retry cycle can
	// contribute up to two).
	RateLimited *obs.Counter
	// Retries counts backoff-and-retry cycles entered after a first 429.
	Retries *obs.Counter
	// QuerySeconds observes the latency of successful search round trips.
	QuerySeconds *obs.Histogram
}

// NewClientMetrics registers a client's metric set on r, labelling every
// series with the store name (so one registry serves many upstreams).
func NewClientMetrics(r *obs.Registry, store string) *ClientMetrics {
	l := `{store="` + obs.EscapeLabel(store) + `"}`
	return &ClientMetrics{
		Queries:      r.Counter("upstream_queries_total"+l, "search queries answered by the upstream (HTTP 200)"),
		RateLimited:  r.Counter("upstream_rate_limited_total"+l, "HTTP 429 answers from the upstream"),
		Retries:      r.Counter("upstream_retries_total"+l, "backoff-and-retry cycles after a 429"),
		QuerySeconds: r.Histogram("upstream_query_seconds"+l, "latency of successful upstream search round trips"),
	}
}

// SetMetrics attaches metrics to the client. Call it right after Dial,
// before the client is shared across goroutines; views made later by
// WithContext inherit the same bundle, so per-job handles keep feeding
// the daemon-wide series.
func (c *Client) SetMetrics(m *ClientMetrics) { c.metrics = m }

// SetName labels the client with its store name; traced query spans
// carry it as their "store" attribute. Call it alongside SetMetrics,
// before the client is shared; WithContext/WithTrace views inherit it.
func (c *Client) SetName(name string) { c.name = name }

// Dial fetches the remote schema and returns a ready client. httpClient
// may be nil (http.DefaultClient).
func Dial(baseURL string, httpClient *http.Client) (*Client, error) {
	if httpClient == nil {
		httpClient = http.DefaultClient
	}
	c := &Client{
		base:    strings.TrimRight(baseURL, "/"),
		http:    httpClient,
		queries: new(atomic.Int64),
		backoff: new(atomic.Int64),
	}
	resp, err := c.http.Get(c.base + "/v1/meta")
	if err != nil {
		return nil, fmt.Errorf("web: fetching meta: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("web: meta endpoint answered %s", resp.Status)
	}
	var meta MetaResponse
	if err := json.NewDecoder(resp.Body).Decode(&meta); err != nil {
		return nil, fmt.Errorf("web: decoding meta: %w", err)
	}
	if meta.K < 1 || len(meta.Attrs) == 0 {
		return nil, fmt.Errorf("web: implausible meta: k=%d, %d attributes", meta.K, len(meta.Attrs))
	}
	c.k = meta.K
	for _, a := range meta.Attrs {
		cap, err := parseCap(a.Cap)
		if err != nil {
			return nil, err
		}
		c.caps = append(c.caps, cap)
		c.domains = append(c.domains, query.Interval{Lo: a.Lo, Hi: a.Hi})
		c.names = append(c.names, a.Name)
	}
	return c, nil
}

// SetRetryBackoff overrides the wait before the single 429 retry
// (DefaultRetryBackoff when unset; a server Retry-After still wins).
func (c *Client) SetRetryBackoff(d time.Duration) { c.backoff.Store(int64(d)) }

// WithContext returns a view of the client whose requests (and 429
// backoff waits) are aborted when ctx is cancelled. The view shares the
// underlying HTTP client, schema and query counter, so a long-lived
// client can hand each job its own cancellable handle — exactly what a
// discovery service needs to stop a killed job from issuing further
// upstream queries.
func (c *Client) WithContext(ctx context.Context) *Client {
	d := *c
	d.ctx = ctx
	return &d
}

// WithTrace returns a view of the client that records one "web.query"
// span per counted upstream query (store, canonical-key fingerprint,
// tuples returned, HTTP status, retries, latency) under parent, and
// stamps every search request with the trace's id as an X-Trace-Id
// header so the server's access log correlates with this job. The
// view shares the HTTP client, schema and query counter, exactly like
// WithContext.
func (c *Client) WithTrace(t *obs.Tracer, parent uint64) *Client {
	d := *c
	d.tracer = t
	d.spanParent = parent
	d.traceID = t.TraceID()
	return &d
}

// reqCtx is the context requests are issued under.
func (c *Client) reqCtx() context.Context {
	if c.ctx != nil {
		return c.ctx
	}
	return context.Background()
}

// Query implements core.Interface with one HTTP search request. A 429
// answer is retried once after a backoff (the server's Retry-After when
// advertised, SetRetryBackoff/DefaultRetryBackoff otherwise) — transient
// rate limits are the norm mid-discovery and a raw error would abort an
// otherwise healthy run. A second 429 returns a *RateLimitError, which
// errors.Is-matches hiddensky.ErrRateLimited so discovery degrades to its
// anytime partial result.
func (c *Client) Query(q query.Q) (hidden.Result, error) {
	req := SearchRequest{}
	for _, p := range q {
		req.Preds = append(req.Preds, WirePredicate{Attr: p.Attr, Op: encodeOp(p.Op), Value: p.Value})
	}
	body, err := json.Marshal(req)
	if err != nil {
		return hidden.Result{}, err
	}
	// One span per counted upstream query: it opens before the first
	// attempt so its latency covers any 429 backoff, Ends as
	// "web.query" only when the upstream answered 200 (keeping the
	// span count exactly equal to the counted queries), is renamed
	// "web.rate_limited" for a terminal double-429, and is abandoned
	// (never recorded) on transport or predicate errors.
	sp := c.tracer.Start("web.query", c.spanParent)
	if c.tracer != nil {
		if c.name != "" {
			sp.SetStr("store", c.name)
		}
		sp.SetInt("key", int64(c.queryKey(q)))
	}
	res, retryAfter, err := c.search(body)
	if err == nil {
		c.endQuerySpan(&sp, &res, 0)
		return res, nil
	}
	if !isRateLimited(err) {
		return res, err
	}
	if m := c.metrics; m != nil && m.Retries != nil {
		m.Retries.Inc()
	}
	wait := retryAfter
	if wait <= 0 {
		wait = time.Duration(c.backoff.Load())
	}
	if wait <= 0 {
		wait = DefaultRetryBackoff
	}
	if err := sleepCtx(c.ctx, wait); err != nil {
		return hidden.Result{}, fmt.Errorf("web: aborted while backing off: %w", err)
	}
	res, retryAfter, err = c.search(body)
	if err != nil && isRateLimited(err) {
		sp.Rename("web.rate_limited")
		sp.SetInt("status", http.StatusTooManyRequests)
		sp.SetInt("retries", 1)
		sp.End()
		return hidden.Result{}, &RateLimitError{RetryAfter: retryAfter}
	}
	if err != nil {
		return res, err
	}
	c.endQuerySpan(&sp, &res, 1)
	return res, nil
}

// endQuerySpan finishes a successful query's span.
func (c *Client) endQuerySpan(sp *obs.Span, res *hidden.Result, retries int64) {
	sp.SetInt("tuples", int64(len(res.Tuples)))
	sp.SetInt("status", http.StatusOK)
	sp.SetInt("retries", retries)
	sp.End()
}

// queryKey fingerprints the query's canonical box under the remote
// domains (FNV-1a over the interval bounds) — the same identity the
// shared cache keys on, so a trace reader can tie a web.query span to
// the qcache.lookup that missed. Computed only on traced queries.
func (c *Client) queryKey(q query.Q) uint64 {
	const keyStackAttrs = 16
	var ivArr [keyStackAttrs]query.Interval
	scratch := ivArr[:0]
	if len(c.domains) > keyStackAttrs {
		scratch = nil
	}
	box := q.CanonicalizeInto(scratch, c.domains)
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for _, iv := range box.Dims {
		h ^= uint64(int64(iv.Lo))
		h *= prime64
		h ^= uint64(int64(iv.Hi))
		h *= prime64
	}
	return h
}

// errRemoteRateLimited marks a single 429 answer internally.
var errRemoteRateLimited = fmt.Errorf("%w: remote answered 429", hidden.ErrRateLimited)

func isRateLimited(err error) bool {
	return err == errRemoteRateLimited
}

// search performs one POST /v1/search round trip. The response body is
// always drained so the keep-alive connection can be reused by the next
// (possibly concurrent) query.
func (c *Client) search(body []byte) (hidden.Result, time.Duration, error) {
	req, err := http.NewRequestWithContext(c.reqCtx(), http.MethodPost, c.base+"/v1/search", bytes.NewReader(body))
	if err != nil {
		return hidden.Result{}, 0, fmt.Errorf("web: building search request: %w", err)
	}
	req.Header.Set("Content-Type", "application/json")
	if c.traceID != "" {
		req.Header.Set("X-Trace-Id", c.traceID)
	}
	t0 := time.Now()
	resp, err := c.http.Do(req)
	if err != nil {
		return hidden.Result{}, 0, fmt.Errorf("web: search request: %w", err)
	}
	defer func() {
		_, _ = io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}()
	switch resp.StatusCode {
	case http.StatusOK:
	case http.StatusTooManyRequests:
		if m := c.metrics; m != nil && m.RateLimited != nil {
			m.RateLimited.Inc()
		}
		return hidden.Result{}, parseRetryAfter(resp.Header.Get("Retry-After")), errRemoteRateLimited
	case http.StatusBadRequest:
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return hidden.Result{}, 0, fmt.Errorf("%w: %s", hidden.ErrUnsupportedPredicate, strings.TrimSpace(string(msg)))
	default:
		return hidden.Result{}, 0, fmt.Errorf("web: search answered %s", resp.Status)
	}
	var sr SearchResponse
	if err := json.NewDecoder(resp.Body).Decode(&sr); err != nil {
		return hidden.Result{}, 0, fmt.Errorf("web: decoding search response: %w", err)
	}
	c.queries.Add(1)
	if m := c.metrics; m != nil {
		if m.Queries != nil {
			m.Queries.Inc()
		}
		if m.QuerySeconds != nil {
			m.QuerySeconds.Observe(time.Since(t0))
		}
	}
	return hidden.Result{Tuples: sr.Tuples, Overflow: sr.Overflow}, 0, nil
}

// sleepCtx waits for d or until ctx (when non-nil) is cancelled,
// returning the context's error in the latter case.
func sleepCtx(ctx context.Context, d time.Duration) error {
	if ctx == nil {
		time.Sleep(d)
		return nil
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// parseRetryAfter reads a seconds-valued Retry-After header, capped to
// keep a misbehaving server from stalling discovery.
func parseRetryAfter(h string) time.Duration {
	if h == "" {
		return 0
	}
	secs, err := strconv.Atoi(strings.TrimSpace(h))
	if err != nil || secs < 0 {
		return 0
	}
	d := time.Duration(secs) * time.Second
	if d > maxRetryAfter {
		d = maxRetryAfter
	}
	return d
}

// NumAttrs implements core.Interface.
func (c *Client) NumAttrs() int { return len(c.caps) }

// K implements core.Interface.
func (c *Client) K() int { return c.k }

// Cap implements core.Interface.
func (c *Client) Cap(i int) hidden.Capability { return c.caps[i] }

// Domain implements core.Interface.
func (c *Client) Domain(i int) query.Interval { return c.domains[i] }

// AttrName returns the remote display name of attribute i.
func (c *Client) AttrName(i int) string { return c.names[i] }

// QueriesIssued counts successful search requests sent by this client.
func (c *Client) QueriesIssued() int { return int(c.queries.Load()) }

func parseCap(s string) (hidden.Capability, error) {
	switch strings.ToUpper(strings.TrimSpace(s)) {
	case "SQ":
		return hidden.SQ, nil
	case "RQ":
		return hidden.RQ, nil
	case "PQ":
		return hidden.PQ, nil
	}
	return 0, fmt.Errorf("web: unknown capability %q in remote meta", s)
}
