package web

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"hiddensky/internal/hidden"
	"hiddensky/internal/obs"
)

// TestResponseContentTypes pins the explicit Content-Type of every
// telemetry surface: Prometheus text (with the exposition version) on
// /metrics, JSON with charset on stats/history/health.
func TestResponseContentTypes(t *testing.T) {
	db := testDB(t, 20, 2, 8, 2, capsAll(2, hidden.RQ), 0)
	srv := httptest.NewServer(NewServer(db, nil))
	defer srv.Close()

	for _, tc := range []struct {
		path, want string
	}{
		{"/metrics", "text/plain; version=0.0.4; charset=utf-8"},
		{"/v1/stats", "application/json; charset=utf-8"},
		{"/v1/history", "application/json; charset=utf-8"},
		{"/healthz", "application/json; charset=utf-8"},
		{"/readyz", "application/json; charset=utf-8"},
	} {
		resp, err := http.Get(srv.URL + tc.path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if got := resp.Header.Get("Content-Type"); got != tc.want {
			t.Errorf("%s Content-Type = %q, want %q", tc.path, got, tc.want)
		}
	}
}

func TestHistoryEndpoint(t *testing.T) {
	db := testDB(t, 30, 2, 8, 2, capsAll(2, hidden.RQ), 0)
	s := NewServer(db, nil)
	srv := httptest.NewServer(s)
	defer srv.Close()

	// Drive some traffic, then two hand ticks one second apart so the
	// windowed rate is defined without waiting a wall-clock second.
	base := time.Now().Add(-2 * time.Second)
	s.Sampler().SampleNow(base)
	for i := 0; i < 5; i++ {
		resp, err := http.Post(srv.URL+"/v1/search", "application/json", bytes.NewBufferString(`{"preds":[]}`))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
	}
	s.Sampler().SampleNow(base.Add(time.Second))

	resp, err := http.Get(srv.URL + "/v1/history")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var h obs.HistorySnapshot
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
		t.Fatal(err)
	}
	if len(h.TimesUnixMS) != 2 {
		t.Fatalf("history has %d samples, want 2", len(h.TimesUnixMS))
	}
	var reqs, runtimeSeries bool
	for _, sh := range h.Series {
		if sh.Name == "search_requests_total" {
			reqs = true
			if sh.Values[1] != 5 {
				t.Fatalf("search_requests_total = %v, want ..5", sh.Values)
			}
			if sh.Rate1m < 4.9 || sh.Rate1m > 5.1 {
				t.Fatalf("search rate_1m = %v, want ~5", sh.Rate1m)
			}
		}
		if strings.HasPrefix(sh.Name, "go_") {
			runtimeSeries = true
		}
	}
	if !reqs {
		t.Fatal("search_requests_total missing from history")
	}
	if !runtimeSeries {
		t.Fatal("runtime go_* series missing from history")
	}

	// ?last bounds trailing samples; a bad value answers 400.
	resp2, _ := http.Get(srv.URL + "/v1/history?last=1")
	var h2 obs.HistorySnapshot
	_ = json.NewDecoder(resp2.Body).Decode(&h2)
	resp2.Body.Close()
	if len(h2.TimesUnixMS) != 1 {
		t.Fatalf("?last=1 returned %d samples", len(h2.TimesUnixMS))
	}
	resp3, _ := http.Get(srv.URL + "/v1/history?last=bogus")
	resp3.Body.Close()
	if resp3.StatusCode != http.StatusBadRequest {
		t.Fatalf("?last=bogus answered %d, want 400", resp3.StatusCode)
	}
}

// TestServerHealthDegradesOn429Burst drives the web server's only
// health check end to end: ready with no traffic, degraded after a
// sustained 429 burst, ready again once the burst ages out of the 1m
// window.
func TestServerHealthDegradesOn429Burst(t *testing.T) {
	db := testDB(t, 30, 2, 8, 2, capsAll(2, hidden.RQ), 2) // tiny rate limit
	s := NewServer(db, nil)
	srv := httptest.NewServer(s)
	defer srv.Close()

	readyz := func() (int, obs.HealthReport) {
		resp, err := http.Get(srv.URL + "/readyz")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var rep obs.HealthReport
		if err := json.NewDecoder(resp.Body).Decode(&rep); err != nil {
			t.Fatal(err)
		}
		return resp.StatusCode, rep
	}

	base := time.Now().Add(-5 * time.Minute)
	s.Sampler().SampleNow(base)
	s.Sampler().SampleNow(base.Add(time.Second))
	if code, rep := readyz(); code != http.StatusOK || rep.State != obs.HealthReady {
		t.Fatalf("idle server: code=%d state=%v, want 200/ready", code, rep.State)
	}

	// Exhaust the limiter, then hammer: every extra request 429s.
	for i := 0; i < 30; i++ {
		resp, _ := http.Post(srv.URL+"/v1/search", "application/json", bytes.NewBufferString(`{"preds":[]}`))
		resp.Body.Close()
	}
	s.Sampler().SampleNow(base.Add(2 * time.Second))
	code, rep := readyz()
	if code != http.StatusOK {
		t.Fatalf("degraded readyz = %d, want 200 (still serving)", code)
	}
	if rep.State != obs.HealthDegraded {
		t.Fatalf("state after 429 burst = %v, want degraded", rep.State)
	}

	// Two quiet samples beyond the 1m window: the burst ages out.
	s.Sampler().SampleNow(base.Add(3 * time.Minute))
	s.Sampler().SampleNow(base.Add(3*time.Minute + time.Second))
	if _, rep := readyz(); rep.State != obs.HealthReady {
		t.Fatalf("state after quiet window = %v, want ready (self-healed)", rep.State)
	}
}

func TestHealthEndpointsMethodNotAllowed(t *testing.T) {
	db := testDB(t, 10, 2, 8, 2, capsAll(2, hidden.RQ), 0)
	srv := httptest.NewServer(NewServer(db, nil))
	defer srv.Close()
	for _, path := range []string{"/healthz", "/readyz", "/v1/history"} {
		resp, err := http.Post(srv.URL+path, "application/json", bytes.NewBufferString("{}"))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusMethodNotAllowed {
			t.Errorf("POST %s answered %d, want 405", path, resp.StatusCode)
		}
	}
}
