package web

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"strconv"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"hiddensky/internal/core"
	"hiddensky/internal/hidden"
	"hiddensky/internal/obs"
	"hiddensky/internal/query"
	"hiddensky/internal/retry"
)

// flakyServer answers /v1/meta normally and rate-limits the first
// `limit429` search requests before serving, emulating a transient burst
// limit.
func flakyServer(t *testing.T, db *hidden.DB, limit429 int32) (*httptest.Server, *atomic.Int32) {
	t.Helper()
	inner := NewServer(db, nil)
	var rejected atomic.Int32
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/meta", inner.ServeHTTP)
	mux.HandleFunc("/v1/search", func(w http.ResponseWriter, r *http.Request) {
		if rejected.Add(1) <= limit429 {
			w.WriteHeader(http.StatusTooManyRequests)
			_ = json.NewEncoder(w).Encode(map[string]string{"error": "burst limit"})
			return
		}
		inner.ServeHTTP(w, r)
	})
	return httptest.NewServer(mux), &rejected
}

// TestClientRetriesOnceOn429: one transient 429 is absorbed by a
// backoff-and-retry instead of aborting the discovery mid-run.
func TestClientRetriesOnceOn429(t *testing.T) {
	db := testDB(t, 60, 2, 12, 5, capsAll(2, hidden.RQ), 0)
	srv, _ := flakyServer(t, db, 1)
	defer srv.Close()

	c, err := Dial(srv.URL, nil)
	if err != nil {
		t.Fatal(err)
	}
	c.SetRetryBackoff(time.Millisecond)
	res, err := c.Query(query.Q{{Attr: 0, Op: query.LT, Value: 9}})
	if err != nil {
		t.Fatalf("a single 429 must be retried away, got %v", err)
	}
	want, _ := db.Query(query.Q{{Attr: 0, Op: query.LT, Value: 9}})
	if len(res.Tuples) != len(want.Tuples) {
		t.Fatalf("retried answer has %d tuples, want %d", len(res.Tuples), len(want.Tuples))
	}
	if c.QueriesIssued() != 1 {
		t.Fatalf("QueriesIssued = %d, want 1 (the rejected attempt does not count)", c.QueriesIssued())
	}
}

// TestClientReturnsTypedErrorOnPersistent429: once the policy's attempts
// are spent the 429 surfaces as *RateLimitError, which errors.Is-matches
// ErrRateLimited (the facade's hiddensky.ErrRateLimited) so discovery
// degrades to its anytime result. The attempt count is policy-exact.
func TestClientReturnsTypedErrorOnPersistent429(t *testing.T) {
	db := testDB(t, 60, 2, 12, 5, capsAll(2, hidden.RQ), 0)
	srv, rejected := flakyServer(t, db, 1<<30)
	defer srv.Close()

	c, err := Dial(srv.URL, nil)
	if err != nil {
		t.Fatal(err)
	}
	c.SetRetryPolicy(retry.Policy{Attempts: 3, BaseBackoff: time.Millisecond, NoJitter: true})
	_, err = c.Query(nil)
	var rle *RateLimitError
	if !errors.As(err, &rle) {
		t.Fatalf("err = %v (%T), want *RateLimitError", err, err)
	}
	if !errors.Is(err, hidden.ErrRateLimited) {
		t.Fatal("typed error must errors.Is-match ErrRateLimited")
	}
	if rle.Attempts != 3 {
		t.Fatalf("RateLimitError.Attempts = %d, want 3", rle.Attempts)
	}
	if got := rejected.Load(); got != 3 {
		t.Fatalf("server saw %d attempts, want exactly the policy's 3", got)
	}
}

// TestClientHonorsRetryAfterHeader: the server's Retry-After is used as
// the backoff and reported in the typed error.
func TestClientHonorsRetryAfterHeader(t *testing.T) {
	var hits atomic.Int32
	mux := http.NewServeMux()
	db := testDB(t, 20, 2, 8, 5, capsAll(2, hidden.RQ), 0)
	inner := NewServer(db, nil)
	mux.HandleFunc("/v1/meta", inner.ServeHTTP)
	mux.HandleFunc("/v1/search", func(w http.ResponseWriter, r *http.Request) {
		hits.Add(1)
		w.Header().Set("Retry-After", "1")
		w.WriteHeader(http.StatusTooManyRequests)
	})
	srv := httptest.NewServer(mux)
	defer srv.Close()

	c, err := Dial(srv.URL, nil)
	if err != nil {
		t.Fatal(err)
	}
	c.SetRetryPolicy(retry.Policy{Attempts: 2, BaseBackoff: time.Millisecond, NoJitter: true})
	start := time.Now()
	_, err = c.Query(nil)
	elapsed := time.Since(start)
	var rle *RateLimitError
	if !errors.As(err, &rle) {
		t.Fatalf("err = %v, want *RateLimitError", err)
	}
	if rle.RetryAfter != time.Second {
		t.Fatalf("RetryAfter = %v, want 1s from the header", rle.RetryAfter)
	}
	if elapsed < time.Second {
		t.Fatalf("client waited only %v before retrying, Retry-After said 1s", elapsed)
	}
	if hits.Load() != 2 {
		t.Fatalf("server saw %d attempts, want 2", hits.Load())
	}
}

// TestClientSafeForConcurrentUse: one shared client under a parallel
// discovery run — the scenario Options.Parallelism creates — must be
// race-free with exact query accounting.
func TestClientSafeForConcurrentUse(t *testing.T) {
	db := testDB(t, 400, 3, 30, 5, capsAll(3, hidden.RQ), 0)
	srv := httptest.NewServer(NewServer(db, nil))
	defer srv.Close()

	c, err := Dial(srv.URL, nil)
	if err != nil {
		t.Fatal(err)
	}
	res, err := core.Discover(c, core.Options{Parallelism: 6})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Complete {
		t.Fatal("parallel remote discovery not complete")
	}
	if c.QueriesIssued() != res.Queries {
		t.Fatalf("client counted %d queries, discovery reported %d", c.QueriesIssued(), res.Queries)
	}
	seq, err := core.Discover(c, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	got := map[string]bool{}
	for _, tup := range res.Skyline {
		got[key(tup)] = true
	}
	for _, tup := range seq.Skyline {
		if !got[key(tup)] {
			t.Fatalf("parallel remote skyline misses %v", tup)
		}
	}
	if len(res.Skyline) != len(seq.Skyline) {
		t.Fatalf("parallel remote skyline has %d tuples, sequential %d", len(res.Skyline), len(seq.Skyline))
	}

	// Raw concurrent queries through one client.
	var wg sync.WaitGroup
	for i := 0; i < 20; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if _, err := c.Query(query.Q{{Attr: 0, Op: query.LE, Value: i}}); err != nil {
				t.Errorf("concurrent query %d: %v", i, err)
			}
		}(i)
	}
	wg.Wait()
}

func key(t []int) string {
	b := make([]byte, 0, len(t)*4)
	for _, v := range t {
		b = append(b, byte(v), byte(v>>8), ',')
	}
	return string(b)
}

// faultyServer answers /v1/meta normally and runs fail on the first
// `failures` search requests before serving cleanly.
func faultyServer(t *testing.T, db *hidden.DB, failures int32, fail func(w http.ResponseWriter, r *http.Request)) (*httptest.Server, *atomic.Int32) {
	t.Helper()
	inner := NewServer(db, nil)
	var hits atomic.Int32
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/meta", inner.ServeHTTP)
	mux.HandleFunc("/v1/search", func(w http.ResponseWriter, r *http.Request) {
		if n := hits.Add(1); n <= failures {
			fail(w, r)
			return
		}
		inner.ServeHTTP(w, r)
	})
	return httptest.NewServer(mux), &hits
}

func fastPolicy(attempts int) retry.Policy {
	return retry.Policy{Attempts: attempts, BaseBackoff: time.Millisecond,
		MaxBackoff: 5 * time.Millisecond, NoJitter: true}
}

// TestClientExponentialBackoff: with jitter off, the waits between
// attempts follow base·mult^(n-1) — the second retry waits longer than
// the first.
func TestClientExponentialBackoff(t *testing.T) {
	db := testDB(t, 20, 2, 8, 5, capsAll(2, hidden.RQ), 0)
	srv, hits := flakyServer(t, db, 2)
	defer srv.Close()
	c, err := Dial(srv.URL, nil)
	if err != nil {
		t.Fatal(err)
	}
	c.SetRetryPolicy(retry.Policy{Attempts: 4, BaseBackoff: 40 * time.Millisecond,
		Multiplier: 2, NoJitter: true})
	start := time.Now()
	if _, err := c.Query(nil); err != nil {
		t.Fatalf("two 429s must be absorbed: %v", err)
	}
	elapsed := time.Since(start)
	if got := hits.Load(); got != 3 {
		t.Fatalf("server saw %d attempts, want 3", got)
	}
	// Two waits: 40ms then 80ms.
	if elapsed < 120*time.Millisecond {
		t.Fatalf("elapsed %v, want >= 120ms (40ms + 80ms backoff)", elapsed)
	}
}

// TestClientRetriesTransient5xx: a transient 503 is retried away like a
// 429 — the upstream being briefly on fire must not abort discovery.
func TestClientRetriesTransient5xx(t *testing.T) {
	db := testDB(t, 40, 2, 10, 5, capsAll(2, hidden.RQ), 0)
	srv, hits := faultyServer(t, db, 2, func(w http.ResponseWriter, _ *http.Request) {
		w.WriteHeader(http.StatusServiceUnavailable)
	})
	defer srv.Close()
	c, err := Dial(srv.URL, nil)
	if err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry()
	c.SetMetrics(NewClientMetrics(reg, "flaky"))
	c.SetRetryPolicy(fastPolicy(4))
	res, err := c.Query(query.Q{{Attr: 0, Op: query.LE, Value: 5}})
	if err != nil {
		t.Fatalf("transient 503s must be retried away: %v", err)
	}
	want, _ := db.Query(query.Q{{Attr: 0, Op: query.LE, Value: 5}})
	if len(res.Tuples) != len(want.Tuples) {
		t.Fatalf("answer after retries has %d tuples, want %d", len(res.Tuples), len(want.Tuples))
	}
	if hits.Load() != 3 {
		t.Fatalf("server saw %d attempts, want 3", hits.Load())
	}
	if got := c.metrics.Unavailable.Load(); got != 2 {
		t.Fatalf("Unavailable = %d, want 2", got)
	}
	if c.QueriesIssued() != 1 {
		t.Fatalf("QueriesIssued = %d, want 1 (failed attempts never count)", c.QueriesIssued())
	}
}

// TestClientRetriesConnectionReset: a dropped connection mid-request is
// transient; the next attempt reconnects.
func TestClientRetriesConnectionReset(t *testing.T) {
	db := testDB(t, 40, 2, 10, 5, capsAll(2, hidden.RQ), 0)
	srv, hits := faultyServer(t, db, 2, func(w http.ResponseWriter, _ *http.Request) {
		panic(http.ErrAbortHandler)
	})
	defer srv.Close()
	c, err := Dial(srv.URL, nil)
	if err != nil {
		t.Fatal(err)
	}
	c.SetRetryPolicy(fastPolicy(4))
	if _, err := c.Query(nil); err != nil {
		t.Fatalf("connection resets must be retried away: %v", err)
	}
	if hits.Load() != 3 {
		t.Fatalf("server saw %d attempts, want 3", hits.Load())
	}
}

// TestClientRetriesTruncatedBody: a 200 whose body is cut mid-payload
// fails to decode and is retried — the query was never counted, so a
// second attempt cannot double-count.
func TestClientRetriesTruncatedBody(t *testing.T) {
	db := testDB(t, 40, 2, 10, 5, capsAll(2, hidden.RQ), 0)
	srv, hits := faultyServer(t, db, 1, func(w http.ResponseWriter, _ *http.Request) {
		full := []byte(`{"tuples":[[1,2],[3,4]],"overflow":false}`)
		w.Header().Set("Content-Type", "application/json")
		w.Header().Set("Content-Length", strconv.Itoa(len(full)))
		w.WriteHeader(http.StatusOK)
		_, _ = w.Write(full[:len(full)/2])
		panic(http.ErrAbortHandler)
	})
	defer srv.Close()
	c, err := Dial(srv.URL, nil)
	if err != nil {
		t.Fatal(err)
	}
	c.SetRetryPolicy(fastPolicy(4))
	if _, err := c.Query(nil); err != nil {
		t.Fatalf("truncated body must be retried away: %v", err)
	}
	if hits.Load() != 2 {
		t.Fatalf("server saw %d attempts, want 2", hits.Load())
	}
	if c.QueriesIssued() != 1 {
		t.Fatalf("QueriesIssued = %d, want 1", c.QueriesIssued())
	}
}

// TestClientGivesUpWithTransientError: a persistently broken upstream
// surfaces as *TransientError wrapping retry.ErrUnavailable — distinct
// from a rate limit, so the service layer parks and trips the breaker
// instead of treating it as a budget stop.
func TestClientGivesUpWithTransientError(t *testing.T) {
	db := testDB(t, 20, 2, 8, 5, capsAll(2, hidden.RQ), 0)
	srv, hits := faultyServer(t, db, 1<<30, func(w http.ResponseWriter, _ *http.Request) {
		w.WriteHeader(http.StatusBadGateway)
	})
	defer srv.Close()
	c, err := Dial(srv.URL, nil)
	if err != nil {
		t.Fatal(err)
	}
	c.SetRetryPolicy(fastPolicy(3))
	_, err = c.Query(nil)
	var te *TransientError
	if !errors.As(err, &te) {
		t.Fatalf("err = %v (%T), want *TransientError", err, err)
	}
	if !errors.Is(err, retry.ErrUnavailable) {
		t.Fatal("give-up must errors.Is-match retry.ErrUnavailable")
	}
	if errors.Is(err, hidden.ErrRateLimited) {
		t.Fatal("a 502 give-up must not look like a rate limit")
	}
	if te.Attempts != 3 || hits.Load() != 3 {
		t.Fatalf("attempts: typed %d, server %d; want 3 and 3", te.Attempts, hits.Load())
	}
}

// TestClientPerAttemptTimeout: a stalled upstream is cut off by the
// per-attempt timeout and retried; with every attempt stalling, the
// give-up arrives in bounded time instead of hanging discovery.
func TestClientPerAttemptTimeout(t *testing.T) {
	db := testDB(t, 20, 2, 8, 5, capsAll(2, hidden.RQ), 0)
	srv, hits := faultyServer(t, db, 1<<30, func(w http.ResponseWriter, r *http.Request) {
		select {
		case <-r.Context().Done(): // the client's per-attempt timeout fired
		case <-time.After(5 * time.Second):
		}
	})
	defer srv.Close()
	c, err := Dial(srv.URL, nil)
	if err != nil {
		t.Fatal(err)
	}
	p := fastPolicy(2)
	p.PerAttemptTimeout = 50 * time.Millisecond
	c.SetRetryPolicy(p)
	start := time.Now()
	_, err = c.Query(nil)
	if !errors.Is(err, retry.ErrUnavailable) {
		t.Fatalf("stalled upstream error = %v, want retry.ErrUnavailable", err)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("give-up took %v, per-attempt timeout not applied", elapsed)
	}
	if hits.Load() != 2 {
		t.Fatalf("server saw %d attempts, want 2", hits.Load())
	}
}

// TestClientCancelledContextIsFatal: when the job's own context dies the
// client must not retry — cancellation is not the upstream's fault.
func TestClientCancelledContextIsFatal(t *testing.T) {
	db := testDB(t, 20, 2, 8, 5, capsAll(2, hidden.RQ), 0)
	srv, hits := faultyServer(t, db, 0, nil)
	defer srv.Close()
	c, err := Dial(srv.URL, nil)
	if err != nil {
		t.Fatal(err)
	}
	c.SetRetryPolicy(fastPolicy(4))
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err = c.WithContext(ctx).Query(nil)
	if err == nil || errors.Is(err, retry.ErrUnavailable) {
		t.Fatalf("cancelled-context error = %v, must be fatal, not transient", err)
	}
	if hits.Load() != 0 {
		t.Fatalf("server saw %d attempts under a dead context", hits.Load())
	}
}

// TestClientRetryAttemptsHistogram: every finished query observes its
// retry count on upstream_retry_attempts (0 on the happy path).
func TestClientRetryAttemptsHistogram(t *testing.T) {
	db := testDB(t, 40, 2, 10, 5, capsAll(2, hidden.RQ), 0)
	srv, _ := flakyServer(t, db, 2)
	defer srv.Close()
	c, err := Dial(srv.URL, nil)
	if err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry()
	c.SetMetrics(NewClientMetrics(reg, "s"))
	c.SetRetryPolicy(fastPolicy(4))
	if _, err := c.Query(nil); err != nil { // absorbs 2 retries
		t.Fatal(err)
	}
	if _, err := c.Query(nil); err != nil { // clean
		t.Fatal(err)
	}
	h := c.metrics.RetryAttempts
	if n := h.Count(); n != 2 {
		t.Fatalf("histogram count = %d, want 2 (one observation per query)", n)
	}
	if sum := h.Snapshot().SumMicros; sum != 0.002 {
		t.Fatalf("histogram sum = %vus, want 0.002 (two retries on the first query, 1ns each)", sum)
	}
}
