package web

import (
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"hiddensky/internal/core"
	"hiddensky/internal/hidden"
	"hiddensky/internal/query"
)

// flakyServer answers /v1/meta normally and rate-limits the first
// `limit429` search requests before serving, emulating a transient burst
// limit.
func flakyServer(t *testing.T, db *hidden.DB, limit429 int32) (*httptest.Server, *atomic.Int32) {
	t.Helper()
	inner := NewServer(db, nil)
	var rejected atomic.Int32
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/meta", inner.ServeHTTP)
	mux.HandleFunc("/v1/search", func(w http.ResponseWriter, r *http.Request) {
		if rejected.Add(1) <= limit429 {
			w.WriteHeader(http.StatusTooManyRequests)
			_ = json.NewEncoder(w).Encode(map[string]string{"error": "burst limit"})
			return
		}
		inner.ServeHTTP(w, r)
	})
	return httptest.NewServer(mux), &rejected
}

// TestClientRetriesOnceOn429: one transient 429 is absorbed by the single
// backoff-and-retry instead of aborting the discovery mid-run.
func TestClientRetriesOnceOn429(t *testing.T) {
	db := testDB(t, 60, 2, 12, 5, capsAll(2, hidden.RQ), 0)
	srv, _ := flakyServer(t, db, 1)
	defer srv.Close()

	c, err := Dial(srv.URL, nil)
	if err != nil {
		t.Fatal(err)
	}
	c.SetRetryBackoff(time.Millisecond)
	res, err := c.Query(query.Q{{Attr: 0, Op: query.LT, Value: 9}})
	if err != nil {
		t.Fatalf("a single 429 must be retried away, got %v", err)
	}
	want, _ := db.Query(query.Q{{Attr: 0, Op: query.LT, Value: 9}})
	if len(res.Tuples) != len(want.Tuples) {
		t.Fatalf("retried answer has %d tuples, want %d", len(res.Tuples), len(want.Tuples))
	}
	if c.QueriesIssued() != 1 {
		t.Fatalf("QueriesIssued = %d, want 1 (the rejected attempt does not count)", c.QueriesIssued())
	}
}

// TestClientReturnsTypedErrorOnPersistent429: a second 429 surfaces as
// *RateLimitError, which errors.Is-matches ErrRateLimited (the facade's
// hiddensky.ErrRateLimited) so discovery degrades to its anytime result.
func TestClientReturnsTypedErrorOnPersistent429(t *testing.T) {
	db := testDB(t, 60, 2, 12, 5, capsAll(2, hidden.RQ), 0)
	srv, rejected := flakyServer(t, db, 1<<30)
	defer srv.Close()

	c, err := Dial(srv.URL, nil)
	if err != nil {
		t.Fatal(err)
	}
	c.SetRetryBackoff(time.Millisecond)
	_, err = c.Query(nil)
	var rle *RateLimitError
	if !errors.As(err, &rle) {
		t.Fatalf("err = %v (%T), want *RateLimitError", err, err)
	}
	if !errors.Is(err, hidden.ErrRateLimited) {
		t.Fatal("typed error must errors.Is-match ErrRateLimited")
	}
	if got := rejected.Load(); got != 2 {
		t.Fatalf("server saw %d attempts, want exactly 2 (one retry)", got)
	}
}

// TestClientHonorsRetryAfterHeader: the server's Retry-After is used as
// the backoff and reported in the typed error.
func TestClientHonorsRetryAfterHeader(t *testing.T) {
	var hits atomic.Int32
	mux := http.NewServeMux()
	db := testDB(t, 20, 2, 8, 5, capsAll(2, hidden.RQ), 0)
	inner := NewServer(db, nil)
	mux.HandleFunc("/v1/meta", inner.ServeHTTP)
	mux.HandleFunc("/v1/search", func(w http.ResponseWriter, r *http.Request) {
		hits.Add(1)
		w.Header().Set("Retry-After", "1")
		w.WriteHeader(http.StatusTooManyRequests)
	})
	srv := httptest.NewServer(mux)
	defer srv.Close()

	c, err := Dial(srv.URL, nil)
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	_, err = c.Query(nil)
	elapsed := time.Since(start)
	var rle *RateLimitError
	if !errors.As(err, &rle) {
		t.Fatalf("err = %v, want *RateLimitError", err)
	}
	if rle.RetryAfter != time.Second {
		t.Fatalf("RetryAfter = %v, want 1s from the header", rle.RetryAfter)
	}
	if elapsed < time.Second {
		t.Fatalf("client waited only %v before retrying, Retry-After said 1s", elapsed)
	}
	if hits.Load() != 2 {
		t.Fatalf("server saw %d attempts, want 2", hits.Load())
	}
}

// TestClientSafeForConcurrentUse: one shared client under a parallel
// discovery run — the scenario Options.Parallelism creates — must be
// race-free with exact query accounting.
func TestClientSafeForConcurrentUse(t *testing.T) {
	db := testDB(t, 400, 3, 30, 5, capsAll(3, hidden.RQ), 0)
	srv := httptest.NewServer(NewServer(db, nil))
	defer srv.Close()

	c, err := Dial(srv.URL, nil)
	if err != nil {
		t.Fatal(err)
	}
	res, err := core.Discover(c, core.Options{Parallelism: 6})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Complete {
		t.Fatal("parallel remote discovery not complete")
	}
	if c.QueriesIssued() != res.Queries {
		t.Fatalf("client counted %d queries, discovery reported %d", c.QueriesIssued(), res.Queries)
	}
	seq, err := core.Discover(c, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	got := map[string]bool{}
	for _, tup := range res.Skyline {
		got[key(tup)] = true
	}
	for _, tup := range seq.Skyline {
		if !got[key(tup)] {
			t.Fatalf("parallel remote skyline misses %v", tup)
		}
	}
	if len(res.Skyline) != len(seq.Skyline) {
		t.Fatalf("parallel remote skyline has %d tuples, sequential %d", len(res.Skyline), len(seq.Skyline))
	}

	// Raw concurrent queries through one client.
	var wg sync.WaitGroup
	for i := 0; i < 20; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if _, err := c.Query(query.Q{{Attr: 0, Op: query.LE, Value: i}}); err != nil {
				t.Errorf("concurrent query %d: %v", i, err)
			}
		}(i)
	}
	wg.Wait()
}

func key(t []int) string {
	b := make([]byte, 0, len(t)*4)
	for _, v := range t {
		b = append(b, byte(v), byte(v>>8), ',')
	}
	return string(b)
}
