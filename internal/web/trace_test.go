package web

import (
	"bytes"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"hiddensky/internal/hidden"
	"hiddensky/internal/obs"
	"hiddensky/internal/query"
	"hiddensky/internal/retry"
)

func traceTestDB(t *testing.T, limit int) *hidden.DB {
	t.Helper()
	data := make([][]int, 60)
	for i := range data {
		data[i] = []int{i % 13, (i * 7) % 19}
	}
	db, err := hidden.New(hidden.Config{
		Data: data,
		Caps: []hidden.Capability{hidden.RQ, hidden.RQ},
		K:    5, QueryLimit: limit,
	})
	if err != nil {
		t.Fatal(err)
	}
	return db
}

// TestTracedQuerySpansAndHeaderEcho drives a traced client against a
// real server and checks both halves of the correlation story: every
// answered query leaves exactly one "web.query" span (store, key,
// tuples, status, retries), and the server's access-log line echoes
// the X-Trace-Id header the client sent.
func TestTracedQuerySpansAndHeaderEcho(t *testing.T) {
	srv := NewServer(traceTestDB(t, 0), nil)
	var logBuf bytes.Buffer
	srv.SetLogger(obs.NewLogger(&logBuf, "webtest"))
	ts := httptest.NewServer(srv)
	defer ts.Close()

	c, err := Dial(ts.URL, nil)
	if err != nil {
		t.Fatal(err)
	}
	c.SetName("smoke")
	st := obs.NewSpanStore(64)
	tr := st.Tracer("feedcafe00112233")
	tc := c.WithTrace(tr, 9)

	for i := 0; i < 3; i++ {
		if _, err := tc.Query(query.Q{{Attr: 0, Op: query.LT, Value: 5 + i}}); err != nil {
			t.Fatal(err)
		}
	}

	spans := st.Collect("feedcafe00112233")
	if len(spans) != 3 {
		t.Fatalf("%d spans, want 3", len(spans))
	}
	if got := tc.QueriesIssued(); got != 3 {
		t.Fatalf("QueriesIssued = %d", got)
	}
	for i, rec := range spans {
		if rec.Name != "web.query" || rec.Parent != 9 {
			t.Fatalf("span %d = %s parent=%d", i, rec.Name, rec.Parent)
		}
		if s, _ := rec.AttrStr("store"); s != "smoke" {
			t.Fatalf("span %d store = %q", i, s)
		}
		if n, ok := rec.AttrInt("status"); !ok || n != 200 {
			t.Fatalf("span %d status = %d %v", i, n, ok)
		}
		if _, ok := rec.AttrInt("tuples"); !ok {
			t.Fatalf("span %d has no tuples attr", i)
		}
		if _, ok := rec.AttrInt("key"); !ok {
			t.Fatalf("span %d has no key fingerprint", i)
		}
		if n, _ := rec.AttrInt("retries"); n != 0 {
			t.Fatalf("span %d retries = %d", i, n)
		}
	}
	// Distinct canonical boxes fingerprint differently.
	k0, _ := spans[0].AttrInt("key")
	k1, _ := spans[1].AttrInt("key")
	if k0 == k1 {
		t.Fatal("distinct queries share a key fingerprint")
	}

	logs := logBuf.String()
	if !strings.Contains(logs, "trace_id=feedcafe00112233") {
		t.Fatalf("access log does not echo the trace id:\n%s", logs)
	}
	if !strings.Contains(logs, "status=200") {
		t.Fatalf("access log has no status:\n%s", logs)
	}
}

// TestUntracedClientSendsNoTraceHeader: a plain client must not emit
// an X-Trace-Id header (the server logs an empty trace_id).
func TestUntracedClientSendsNoTraceHeader(t *testing.T) {
	var sawHeader string
	srv := NewServer(traceTestDB(t, 0), nil)
	ts := httptest.NewServer(wrapCapture(srv, &sawHeader))
	defer ts.Close()
	c, err := Dial(ts.URL, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Query(query.Q{{Attr: 0, Op: query.LT, Value: 5}}); err != nil {
		t.Fatal(err)
	}
	if sawHeader != "" {
		t.Fatalf("untraced client sent X-Trace-Id %q", sawHeader)
	}
}

// TestTerminalRateLimitSpanRenamed: a double-429 records a
// "web.rate_limited" span, never a "web.query" one — the span count
// must keep matching the counted (200-answered) queries exactly.
func TestTerminalRateLimitSpanRenamed(t *testing.T) {
	srv := NewServer(traceTestDB(t, 1), nil) // 1 query then rate-limited
	ts := httptest.NewServer(srv)
	defer ts.Close()
	c, err := Dial(ts.URL, nil)
	if err != nil {
		t.Fatal(err)
	}
	c.SetRetryPolicy(retry.Policy{Attempts: 2, BaseBackoff: 1, NoJitter: true})
	st := obs.NewSpanStore(64)
	tc := c.WithTrace(st.Tracer("t"), 0)

	if _, err := tc.Query(query.Q{{Attr: 0, Op: query.LT, Value: 5}}); err != nil {
		t.Fatal(err)
	}
	if _, err := tc.Query(query.Q{{Attr: 0, Op: query.LT, Value: 6}}); err == nil {
		t.Fatal("second query should be rate-limited")
	}

	var queries, limited int
	for _, rec := range st.Collect("t") {
		switch rec.Name {
		case "web.query":
			queries++
		case "web.rate_limited":
			limited++
			if n, _ := rec.AttrInt("status"); n != 429 {
				t.Fatalf("rate-limited span status = %d", n)
			}
			if n, _ := rec.AttrInt("retries"); n != 1 {
				t.Fatalf("rate-limited span retries = %d", n)
			}
		default:
			t.Fatalf("unexpected span %q", rec.Name)
		}
	}
	if queries != 1 || limited != 1 {
		t.Fatalf("spans: %d web.query, %d web.rate_limited; want 1 and 1", queries, limited)
	}
	if got := tc.QueriesIssued(); got != queries {
		t.Fatalf("QueriesIssued = %d, web.query spans = %d", got, queries)
	}
}

// wrapCapture records the X-Trace-Id header of search requests.
func wrapCapture(next *Server, dst *string) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/v1/search" {
			*dst = r.Header.Get("X-Trace-Id")
		}
		next.ServeHTTP(w, r)
	})
}
