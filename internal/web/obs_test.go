package web

import (
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"hiddensky/internal/hidden"
	"hiddensky/internal/obs"
	"hiddensky/internal/query"
)

// TestClientServerMetricsParity runs instrumented client queries
// against an instrumented server and checks the two registries agree:
// the client's upstream_queries_total equals the server's
// search_requests_total, and both /metrics and /v1/stats serve them.
func TestClientServerMetricsParity(t *testing.T) {
	db := testDB(t, 80, 3, 20, 5, capsAll(3, hidden.SQ), 0)
	server := NewServer(db, nil)
	srv := httptest.NewServer(server)
	defer srv.Close()

	c, err := Dial(srv.URL, nil)
	if err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry()
	cm := NewClientMetrics(reg, "unit")
	c.SetMetrics(cm)

	const n = 7
	for i := 0; i < n; i++ {
		if _, err := c.Query(query.Q{{Attr: 0, Op: query.LE, Value: 10 + i}}); err != nil {
			t.Fatal(err)
		}
	}
	if got := cm.Queries.Load(); got != n {
		t.Fatalf("client counted %d upstream queries, want %d", got, n)
	}
	if got := cm.QuerySeconds.Snapshot().Count; got != n {
		t.Fatalf("client latency histogram holds %d observations, want %d", got, n)
	}

	// Server side: same count, visible through the scrape endpoints.
	resp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("GET /metrics: %d", resp.StatusCode)
	}
	text := string(body)
	for _, want := range []string{
		"# TYPE search_requests_total counter",
		"search_requests_total 7",
		"search_seconds_count 7",
		"meta_requests_total 1", // Dial fetches /v1/meta once
	} {
		if !strings.Contains(text, want) {
			t.Errorf("/metrics missing %q:\n%s", want, text)
		}
	}

	resp, err = http.Get(srv.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	body, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != 200 || !strings.Contains(string(body), `"name":"search_requests_total"`) {
		t.Fatalf("GET /v1/stats: %d %s", resp.StatusCode, body)
	}
}

// TestClientMetricsCount429 exercises the rate-limit and retry
// counters against a server that answers 429 once before succeeding
// (the client retries a 429 exactly once).
func TestClientMetricsCount429(t *testing.T) {
	db := testDB(t, 40, 2, 10, 4, capsAll(2, hidden.SQ), 0)
	inner := NewServer(db, nil)
	var fails int
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/v1/search" && fails < 1 {
			fails++
			w.Header().Set("Retry-After", "0")
			w.WriteHeader(http.StatusTooManyRequests)
			return
		}
		inner.ServeHTTP(w, r)
	}))
	defer srv.Close()

	c, err := Dial(srv.URL, nil)
	if err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry()
	cm := NewClientMetrics(reg, "flaky")
	c.SetMetrics(cm)
	if _, err := c.Query(query.Q{{Attr: 0, Op: query.LE, Value: 5}}); err != nil {
		t.Fatal(err)
	}
	if got := cm.RateLimited.Load(); got != 1 {
		t.Errorf("rate-limited counter = %d, want 1", got)
	}
	if got := cm.Retries.Load(); got == 0 {
		t.Error("retry counter never moved")
	}
	if got := cm.Queries.Load(); got != 1 {
		t.Errorf("queries counter = %d, want 1 (only the 200 counts)", got)
	}
}
