package web

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"testing"

	"hiddensky/internal/core"
	"hiddensky/internal/crawl"
	"hiddensky/internal/hidden"
	"hiddensky/internal/query"
	"hiddensky/internal/skyline"
)

func testDB(t *testing.T, n, m, domain, k int, caps []hidden.Capability, limit int) *hidden.DB {
	t.Helper()
	rng := rand.New(rand.NewSource(7))
	data := make([][]int, n)
	for i := range data {
		tup := make([]int, m)
		for j := range tup {
			tup[j] = rng.Intn(domain)
		}
		data[i] = tup
	}
	db, err := hidden.New(hidden.Config{Data: data, Caps: caps, K: k, QueryLimit: limit})
	if err != nil {
		t.Fatal(err)
	}
	return db
}

func capsAll(m int, c hidden.Capability) []hidden.Capability {
	out := make([]hidden.Capability, m)
	for i := range out {
		out[i] = c
	}
	return out
}

func TestMetaEndpoint(t *testing.T) {
	db := testDB(t, 50, 3, 10, 4, []hidden.Capability{hidden.SQ, hidden.RQ, hidden.PQ}, 0)
	srv := httptest.NewServer(NewServer(db, []string{"Price", "", "Stops"}))
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/v1/meta")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var meta MetaResponse
	if err := json.NewDecoder(resp.Body).Decode(&meta); err != nil {
		t.Fatal(err)
	}
	if meta.K != 4 || len(meta.Attrs) != 3 {
		t.Fatalf("meta %+v", meta)
	}
	if meta.Attrs[0].Name != "Price" || meta.Attrs[1].Name != "A1" || meta.Attrs[2].Name != "Stops" {
		t.Fatalf("names %+v", meta.Attrs)
	}
	if meta.Attrs[0].Cap != "SQ" || meta.Attrs[1].Cap != "RQ" || meta.Attrs[2].Cap != "PQ" {
		t.Fatalf("caps %+v", meta.Attrs)
	}
}

func TestSearchEndpointSemantics(t *testing.T) {
	db := testDB(t, 200, 2, 20, 3, capsAll(2, hidden.RQ), 0)
	srv := httptest.NewServer(NewServer(db, nil))
	defer srv.Close()

	post := func(body string) (*http.Response, SearchResponse) {
		resp, err := http.Post(srv.URL+"/v1/search", "application/json", bytes.NewBufferString(body))
		if err != nil {
			t.Fatal(err)
		}
		var sr SearchResponse
		_ = json.NewDecoder(resp.Body).Decode(&sr)
		resp.Body.Close()
		return resp, sr
	}

	resp, sr := post(`{"preds":[]}`)
	if resp.StatusCode != 200 || len(sr.Tuples) != 3 || !sr.Overflow {
		t.Fatalf("SELECT *: %d, %+v", resp.StatusCode, sr)
	}
	resp, sr = post(`{"preds":[{"attr":0,"op":"<","value":5},{"attr":1,"op":">=","value":15}]}`)
	if resp.StatusCode != 200 {
		t.Fatalf("range query rejected: %d", resp.StatusCode)
	}
	for _, tup := range sr.Tuples {
		if tup[0] >= 5 || tup[1] < 15 {
			t.Fatalf("answer violates predicates: %v", tup)
		}
	}
	// Malformed and invalid requests answer 400.
	for _, bad := range []string{
		`{"preds":[{"attr":0,"op":"!","value":1}]}`,
		`{"preds":[{"attr":9,"op":"<","value":1}]}`,
		`not json`,
	} {
		resp, _ := post(bad)
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("bad request %q answered %d", bad, resp.StatusCode)
		}
	}
}

func TestCapabilityEnforcedOverHTTP(t *testing.T) {
	db := testDB(t, 50, 2, 8, 2, []hidden.Capability{hidden.SQ, hidden.PQ}, 0)
	srv := httptest.NewServer(NewServer(db, nil))
	defer srv.Close()
	resp, err := http.Post(srv.URL+"/v1/search", "application/json",
		bytes.NewBufferString(`{"preds":[{"attr":0,"op":">","value":3}]}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("> on SQ attribute answered %d", resp.StatusCode)
	}
}

func TestRateLimitOverHTTP(t *testing.T) {
	db := testDB(t, 50, 2, 8, 2, capsAll(2, hidden.RQ), 2)
	srv := httptest.NewServer(NewServer(db, nil))
	defer srv.Close()
	for i := 0; i < 2; i++ {
		resp, _ := http.Post(srv.URL+"/v1/search", "application/json", bytes.NewBufferString(`{"preds":[]}`))
		resp.Body.Close()
	}
	resp, _ := http.Post(srv.URL+"/v1/search", "application/json", bytes.NewBufferString(`{"preds":[]}`))
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("exhausted budget answered %d", resp.StatusCode)
	}
}

// The flagship integration: run every discovery algorithm against the
// HTTP client and compare with local ground truth.
func TestDiscoveryOverHTTP(t *testing.T) {
	for _, tc := range []struct {
		name string
		caps []hidden.Capability
	}{
		{"rq", capsAll(3, hidden.RQ)},
		{"sq", capsAll(3, hidden.SQ)},
		{"pq", capsAll(3, hidden.PQ)},
		{"mixed", []hidden.Capability{hidden.RQ, hidden.SQ, hidden.PQ}},
	} {
		db := testDB(t, 300, 3, 6, 3, tc.caps, 0)
		srv := httptest.NewServer(NewServer(db, nil))
		client, err := Dial(srv.URL, srv.Client())
		if err != nil {
			t.Fatal(err)
		}
		res, err := core.Discover(client, core.Options{})
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		want := skyline.ComputeTuples(db.GroundTruth())
		wantSet := map[string]bool{}
		for _, w := range want {
			wantSet[fmt.Sprint(w)] = true
		}
		if len(res.Skyline) != len(wantSet) {
			t.Fatalf("%s: %d skyline tuples over HTTP, want %d", tc.name, len(res.Skyline), len(wantSet))
		}
		for _, s := range res.Skyline {
			if !wantSet[fmt.Sprint(s)] {
				t.Fatalf("%s: phantom tuple %v", tc.name, s)
			}
		}
		if client.QueriesIssued() != res.Queries {
			t.Fatalf("%s: client counted %d requests, algorithm %d", tc.name, client.QueriesIssued(), res.Queries)
		}
		srv.Close()
	}
}

func TestCrawlOverHTTP(t *testing.T) {
	db := testDB(t, 150, 2, 12, 4, capsAll(2, hidden.RQ), 0)
	srv := httptest.NewServer(NewServer(db, nil))
	defer srv.Close()
	client, err := Dial(srv.URL, srv.Client())
	if err != nil {
		t.Fatal(err)
	}
	res, err := crawl.Crawl(client, crawl.Options{})
	if err != nil {
		t.Fatal(err)
	}
	truth := map[string]bool{}
	for _, tup := range db.GroundTruth() {
		truth[fmt.Sprint(tup)] = true
	}
	got := map[string]bool{}
	for _, tup := range res.Tuples {
		got[fmt.Sprint(tup)] = true
	}
	if len(got) != len(truth) {
		t.Fatalf("crawl over HTTP got %d distinct tuples, want %d", len(got), len(truth))
	}
}

func TestRemoteRateLimitSurfacesAsBudget(t *testing.T) {
	db := testDB(t, 400, 3, 15, 1, capsAll(3, hidden.RQ), 5)
	srv := httptest.NewServer(NewServer(db, nil))
	defer srv.Close()
	client, err := Dial(srv.URL, srv.Client())
	if err != nil {
		t.Fatal(err)
	}
	res, err := core.Discover(client, core.Options{})
	if !errors.Is(err, core.ErrBudget) {
		t.Fatalf("want ErrBudget from remote 429, got %v", err)
	}
	if res.Complete {
		t.Fatal("rate-limited remote run marked complete")
	}
}

func TestDialValidation(t *testing.T) {
	// A server that answers garbage meta.
	bad := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		_, _ = w.Write([]byte(`{"attrs":[],"k":0}`))
	}))
	defer bad.Close()
	if _, err := Dial(bad.URL, bad.Client()); err == nil {
		t.Fatal("implausible meta accepted")
	}
	if _, err := Dial("http://127.0.0.1:1", nil); err == nil {
		t.Fatal("unreachable endpoint accepted")
	}
	weird := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		_, _ = w.Write([]byte(`{"attrs":[{"name":"a","cap":"XX","lo":0,"hi":1}],"k":1}`))
	}))
	defer weird.Close()
	if _, err := Dial(weird.URL, weird.Client()); err == nil {
		t.Fatal("unknown capability accepted")
	}
}

func TestOpRoundTrip(t *testing.T) {
	for _, op := range []query.Op{query.LT, query.LE, query.EQ, query.GE, query.GT} {
		parsed, err := parseOp(encodeOp(op))
		if err != nil || parsed != op {
			t.Fatalf("op %v round-trips to %v (%v)", op, parsed, err)
		}
	}
	if _, err := parseOp("!~"); err == nil {
		t.Fatal("junk op parsed")
	}
}

// Every error the server emits — 400 (malformed body, bad operator,
// unsupported predicate), 429 (rate limit) and 404 (unknown path) —
// must carry the structured JSON envelope {"error": "..."} with
// Content-Type: application/json, never plain text.
func TestErrorsAreStructuredJSON(t *testing.T) {
	db := testDB(t, 30, 2, 8, 2, []hidden.Capability{hidden.SQ, hidden.PQ}, 3)
	srv := httptest.NewServer(NewServer(db, nil))
	defer srv.Close()

	checkEnvelope := func(t *testing.T, resp *http.Response, wantStatus int) {
		t.Helper()
		defer resp.Body.Close()
		if resp.StatusCode != wantStatus {
			t.Fatalf("status %d, want %d", resp.StatusCode, wantStatus)
		}
		if ct := resp.Header.Get("Content-Type"); ct != "application/json; charset=utf-8" {
			t.Fatalf("Content-Type %q, want application/json", ct)
		}
		var e struct {
			Error string `json:"error"`
		}
		if err := json.NewDecoder(resp.Body).Decode(&e); err != nil {
			t.Fatalf("error body is not JSON: %v", err)
		}
		if e.Error == "" {
			t.Fatal("error envelope has an empty message")
		}
	}

	post := func(body string) *http.Response {
		resp, err := http.Post(srv.URL+"/v1/search", "application/json", bytes.NewBufferString(body))
		if err != nil {
			t.Fatal(err)
		}
		return resp
	}

	t.Run("malformed body 400", func(t *testing.T) {
		checkEnvelope(t, post(`{not json`), http.StatusBadRequest)
	})
	t.Run("unknown operator 400", func(t *testing.T) {
		checkEnvelope(t, post(`{"preds":[{"attr":0,"op":"!","value":1}]}`), http.StatusBadRequest)
	})
	t.Run("unsupported predicate 400", func(t *testing.T) {
		// attr 1 is PQ: range operators are rejected by the capability.
		checkEnvelope(t, post(`{"preds":[{"attr":1,"op":"<","value":3}]}`), http.StatusBadRequest)
	})
	t.Run("rate limited 429", func(t *testing.T) {
		for i := 0; i < 3; i++ {
			resp := post(`{"preds":[]}`)
			resp.Body.Close()
		}
		resp := post(`{"preds":[]}`)
		if resp.Header.Get("Retry-After") == "" {
			t.Error("429 should advertise Retry-After")
		}
		checkEnvelope(t, resp, http.StatusTooManyRequests)
	})
	t.Run("unknown path 404", func(t *testing.T) {
		resp, err := http.Get(srv.URL + "/v2/nothing")
		if err != nil {
			t.Fatal(err)
		}
		checkEnvelope(t, resp, http.StatusNotFound)
	})
}

// A wrong method on an existing endpoint keeps its 405 + Allow header
// (the catch-all 404 must not swallow it) and carries the JSON
// envelope.
func TestMethodNotAllowedIsStructuredJSON(t *testing.T) {
	db := testDB(t, 10, 2, 8, 2, capsAll(2, hidden.RQ), 0)
	srv := httptest.NewServer(NewServer(db, nil))
	defer srv.Close()
	resp, err := http.Post(srv.URL+"/v1/meta", "application/json", bytes.NewBufferString("{}"))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("POST /v1/meta answered %d, want 405", resp.StatusCode)
	}
	if allow := resp.Header.Get("Allow"); allow == "" {
		t.Fatal("405 lost its Allow header")
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/json; charset=utf-8" {
		t.Fatalf("Content-Type %q", ct)
	}
	var e struct {
		Error string `json:"error"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&e); err != nil || e.Error == "" {
		t.Fatalf("405 body not a JSON envelope: %v %q", err, e.Error)
	}
	resp2, err := http.Get(srv.URL + "/v1/search")
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET /v1/search answered %d, want 405", resp2.StatusCode)
	}
}
