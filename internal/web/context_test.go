package web

import (
	"context"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"hiddensky/internal/hidden"
)

func metaHandler() http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, MetaResponse{
			K: 2,
			Attrs: []MetaAttr{
				{Name: "A0", Cap: "RQ", Lo: 0, Hi: 9},
				{Name: "A1", Cap: "RQ", Lo: 0, Hi: 9},
			},
		})
	}
}

// TestClientContextCancelDuringBackoff: a cancelled context interrupts
// the 429 backoff wait instead of sleeping it out.
func TestClientContextCancelDuringBackoff(t *testing.T) {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/meta", metaHandler())
	mux.HandleFunc("/v1/search", func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusTooManyRequests)
	})
	srv := httptest.NewServer(mux)
	defer srv.Close()

	base, err := Dial(srv.URL, nil)
	if err != nil {
		t.Fatal(err)
	}
	base.SetRetryBackoff(30 * time.Second)
	ctx, cancel := context.WithCancel(context.Background())
	c := base.WithContext(ctx)
	go func() {
		time.Sleep(50 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	_, err = c.Query(nil)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("Query = %v, want context.Canceled", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("cancellation took %v; the backoff was slept out", elapsed)
	}
}

// TestClientContextCancelMidRequest: a cancelled context aborts an
// in-flight search request.
func TestClientContextCancelMidRequest(t *testing.T) {
	var first atomic.Bool
	first.Store(true)
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/meta", metaHandler())
	mux.HandleFunc("/v1/search", func(w http.ResponseWriter, r *http.Request) {
		if first.Swap(false) {
			// Hold the first request until the client aborts. The body
			// must be drained first: the server only watches for client
			// disconnects once the request body is consumed.
			_, _ = io.Copy(io.Discard, r.Body)
			select {
			case <-r.Context().Done():
			case <-time.After(10 * time.Second):
			}
		}
		writeJSON(w, http.StatusOK, SearchResponse{Tuples: [][]int{}})
	})
	srv := httptest.NewServer(mux)
	defer srv.Close()

	base, err := Dial(srv.URL, nil)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	c := base.WithContext(ctx)
	go func() {
		time.Sleep(50 * time.Millisecond)
		cancel()
	}()
	if _, err := c.Query(nil); !errors.Is(err, context.Canceled) {
		t.Fatalf("Query = %v, want context.Canceled", err)
	}
	// The parent client is unaffected by the view's context.
	if _, err := base.Query(nil); err != nil {
		t.Fatalf("parent client query after view cancel: %v", err)
	}
}

// TestClientSharesCounterAcrossViews: context-bound views draw on the
// parent's query accounting.
func TestClientSharesCounterAcrossViews(t *testing.T) {
	db := hidden.MustNew(hidden.Config{
		Data: [][]int{{1, 2}, {2, 1}},
		Caps: []hidden.Capability{hidden.RQ, hidden.RQ},
		K:    2,
	})
	srv := httptest.NewServer(NewServer(db, nil))
	defer srv.Close()
	base, err := Dial(srv.URL, nil)
	if err != nil {
		t.Fatal(err)
	}
	view := base.WithContext(context.Background())
	if _, err := view.Query(nil); err != nil {
		t.Fatal(err)
	}
	if base.QueriesIssued() != 1 || view.QueriesIssued() != 1 {
		t.Fatalf("counter not shared: base=%d view=%d", base.QueriesIssued(), view.QueriesIssued())
	}
}
