package bench

import (
	"fmt"
	"math/rand"
	"sort"
	"time"

	"hiddensky/internal/answer"
	"hiddensky/internal/skyline"
)

// FigAnswer is not a paper figure: it measures the answer read path the
// repository builds on top of the paper's discovery algorithms. A
// K-skyband is materialized into an answer.Store and a stream of
// random user weight vectors is answered twice — once from the
// band-backed index (the skylined serving path) and once by the
// brute-force scan of the full dataset that a system without discovery
// would have to run. Both sides produce identical top-k score
// sequences (verified per query); the figure reports answered QPS and
// p99 latency for each across dataset sizes.
func FigAnswer(cfg Config) (Figure, error) {
	const (
		m      = 4
		domain = 1000
		kTop   = 10
		bandK  = 10
	)
	sizes := []int{4000, 16000, 64000}
	queries := 400
	if cfg.Quick {
		sizes = []int{500, 2000}
		queries = 60
	}

	fig := Figure{
		ID:     "answer",
		Title:  "Answer store: band-serving vs full-scan top-k (not in the paper)",
		XLabel: "n",
		YLabel: "QPS / p99 µs",
	}
	bandQPS := Series{Name: "band QPS"}
	scanQPS := Series{Name: "scan QPS"}
	bandP99 := Series{Name: "band p99 µs"}
	scanP99 := Series{Name: "scan p99 µs"}

	for _, n := range sizes {
		data := distinctData(cfg.Seed+int64(n), n, m, domain)
		var band [][]int
		for _, i := range skyline.Skyband(data, bandK) {
			band = append(band, data[i])
		}
		store, err := answer.Build(band, answer.Options{BandK: bandK})
		if err != nil {
			return Figure{}, err
		}

		rng := rand.New(rand.NewSource(cfg.Seed + 7))
		ws := make([][]float64, queries)
		for i := range ws {
			w := make([]float64, m)
			for a := range w {
				w[a] = rng.Float64()*2 + 0.01
			}
			ws[i] = w
		}

		bandLat := make([]time.Duration, queries)
		scanLat := make([]time.Duration, queries)
		for i, w := range ws {
			start := time.Now()
			res, err := store.TopK(answer.TopKQuery{Weights: w, K: kTop})
			bandLat[i] = time.Since(start)
			if err != nil {
				return Figure{}, err
			}

			start = time.Now()
			want := scanTopK(data, w, kTop)
			scanLat[i] = time.Since(start)

			// The figure is only worth plotting if the cheap side is right.
			if len(res.Items) != len(want) {
				return Figure{}, fmt.Errorf("bench: band answered %d tuples, scan %d (n=%d)", len(res.Items), len(want), n)
			}
			for r := range want {
				if diff := res.Items[r].Score - want[r]; diff > 1e-9 || diff < -1e-9 {
					return Figure{}, fmt.Errorf("bench: band and scan disagree at rank %d (n=%d): %v vs %v",
						r, n, res.Items[r].Score, want[r])
				}
			}
		}

		x := float64(n)
		bandQPS.Points = append(bandQPS.Points, Point{X: x, Y: qps(bandLat)})
		scanQPS.Points = append(scanQPS.Points, Point{X: x, Y: qps(scanLat)})
		bandP99.Points = append(bandP99.Points, Point{X: x, Y: p99micros(bandLat)})
		scanP99.Points = append(scanP99.Points, Point{X: x, Y: p99micros(scanLat)})
		if n == sizes[len(sizes)-1] {
			fig.Notes = append(fig.Notes, fmt.Sprintf(
				"n=%d: band holds %d of %d tuples (%d levels); every answer verified equal to the full scan",
				n, store.Len(), n, store.Stats().Levels))
		}
	}
	fig.Notes = append(fig.Notes, fmt.Sprintf(
		"m=%d, domain=%d, k=%d, band K=%d, %d random weight vectors per size; scan = brute-force top-k over all data",
		m, domain, kTop, bandK, queries))
	fig.Series = []Series{bandQPS, scanQPS, bandP99, scanP99}
	return fig, nil
}

// distinctData generates n tuples with distinct value combinations
// (the skyband identity's general positioning).
func distinctData(seed int64, n, m, domain int) [][]int {
	rng := rand.New(rand.NewSource(seed))
	seen := map[string]bool{}
	data := make([][]int, 0, n)
	for len(data) < n {
		t := make([]int, m)
		for j := range t {
			t[j] = rng.Intn(domain)
		}
		key := fmt.Sprint(t)
		if !seen[key] {
			seen[key] = true
			data = append(data, t)
		}
	}
	return data
}

// scanTopK is the no-index baseline: score everything, sort, cut.
func scanTopK(data [][]int, w []float64, k int) []float64 {
	scores := make([]float64, len(data))
	for i, t := range data {
		s := 0.0
		for a, wa := range w {
			s += wa * float64(t[a])
		}
		scores[i] = s
	}
	sort.Float64s(scores)
	if k > len(scores) {
		k = len(scores)
	}
	return scores[:k]
}

func qps(lat []time.Duration) float64 {
	var total time.Duration
	for _, d := range lat {
		total += d
	}
	if total <= 0 {
		return 0
	}
	return float64(len(lat)) / total.Seconds()
}

func p99micros(lat []time.Duration) float64 {
	sorted := append([]time.Duration(nil), lat...)
	sort.Slice(sorted, func(a, b int) bool { return sorted[a] < sorted[b] })
	idx := (99 * len(sorted)) / 100
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return float64(sorted[idx].Nanoseconds()) / 1e3
}
