package bench

import (
	"fmt"
	"time"

	"hiddensky/internal/core"
	"hiddensky/internal/datagen"
	"hiddensky/internal/hidden"
	"hiddensky/internal/qcache"
	"hiddensky/internal/query"
)

// FigEngine is not a paper figure: it measures the execution layer added
// on top of the paper's algorithms — the wall-clock speedup of running the
// independent branches of RQ-DB-SKY and PQ-DB-SKY on the bounded worker
// pool, and the query-dedup ratio of the shared memoizing cache
// (queries issued by the algorithm vs. queries answered from the cache
// instead of the backend). Each simulated query pays a fixed latency so
// the measurement reflects the regime the engine is built for: query cost
// dominated by the network round trip, not local CPU.
func FigEngine(cfg Config) (Figure, error) {
	latency := 500 * time.Microsecond
	nRQ := cfg.scale(4000, 800)
	nPQ := cfg.scale(1500, 400)

	rqData := datagen.Independent(cfg.Seed, nRQ, 4, 1000)
	rqDB, err := hidden.New(hidden.Config{Data: rqData.Data, Caps: capsOf(4, hidden.RQ), K: 10})
	if err != nil {
		return Figure{}, err
	}
	pqData := datagen.Independent(cfg.Seed+1, nPQ, 3, 12)
	pqDB, err := hidden.New(hidden.Config{Data: pqData.Data, Caps: capsOf(3, hidden.PQ), K: 10})
	if err != nil {
		return Figure{}, err
	}

	maxP := cfg.Parallelism
	if maxP <= 0 {
		maxP = 8
	}
	var levels []int
	for p := 1; p <= maxP; p *= 2 {
		levels = append(levels, p)
	}

	fig := Figure{
		ID:     "engine",
		Title:  "Parallel engine speedup and query-cache dedup (not in the paper)",
		XLabel: "parallelism",
		YLabel: "speedup (x) / queries",
	}
	speedRQ := Series{Name: "RQ speedup"}
	speedPQ := Series{Name: "PQ speedup"}
	issued := Series{Name: "RQ issued"}
	fromCache := Series{Name: "RQ from cache"}

	var baseRQ, basePQ time.Duration
	for _, p := range levels {
		opt := core.Options{Parallelism: p}

		start := time.Now()
		_, err := core.Run(&delayDB{db: rqDB, d: latency}, core.Request{Algo: core.AlgoRQ}, opt)
		if err != nil {
			return Figure{}, err
		}
		tRQ := time.Since(start)
		if p == 1 {
			baseRQ = tRQ
		}
		speedRQ.Points = append(speedRQ.Points, Point{X: float64(p), Y: ratio(baseRQ, tRQ)})

		start = time.Now()
		_, err = core.Run(&delayDB{db: pqDB, d: latency}, core.Request{Algo: core.AlgoPQ}, opt)
		if err != nil {
			return Figure{}, err
		}
		tPQ := time.Since(start)
		if p == 1 {
			basePQ = tPQ
		}
		speedPQ.Points = append(speedPQ.Points, Point{X: float64(p), Y: ratio(basePQ, tPQ)})

		// Dedup: a fresh shared cache, warmed by one run, then measured on
		// a second run of the same workload — the fleet/re-run scenario the
		// cache exists for. "Issued" counts the second run's algorithm
		// queries; "from cache" counts how many of them never reached the
		// (rate-limited, latency-priced) backend.
		cache := qcache.New(qcache.Config{MaxEntries: cfg.CacheEntries})
		copt := opt
		copt.Cache = cache
		if _, err := core.Run(rqDB, core.Request{Algo: core.AlgoRQ}, copt); err != nil {
			return Figure{}, err
		}
		warm := cache.Stats()
		res2, err := core.Run(rqDB, core.Request{Algo: core.AlgoRQ}, copt)
		if err != nil {
			return Figure{}, err
		}
		s := cache.Stats()
		hits := (s.Hits + s.Coalesced) - (warm.Hits + warm.Coalesced)
		issued.Points = append(issued.Points, Point{X: float64(p), Y: float64(res2.Queries)})
		fromCache.Points = append(fromCache.Points, Point{X: float64(p), Y: float64(hits)})
		if p == levels[len(levels)-1] {
			fig.Notes = append(fig.Notes, fmt.Sprintf(
				"cache at parallelism %d: %d lookups, %d hits, %d coalesced, %d misses, dedup ratio %.3f",
				p, s.Lookups, s.Hits, s.Coalesced, s.Misses, s.DedupRatio()))
		}
	}
	fig.Notes = append(fig.Notes,
		fmt.Sprintf("RQ workload: n=%d, m=4, k=10; PQ workload: n=%d, m=3; simulated per-query latency %v", nRQ, nPQ, latency),
		"speedups are wall-clock seq/par of the same discovery; skyline sets verified identical across parallelism in tests")
	fig.Series = []Series{speedRQ, speedPQ, issued, fromCache}
	return fig, nil
}

func ratio(base, t time.Duration) float64 {
	if t <= 0 {
		return 0
	}
	return float64(base) / float64(t)
}

func capsOf(m int, c hidden.Capability) []hidden.Capability {
	out := make([]hidden.Capability, m)
	for i := range out {
		out[i] = c
	}
	return out
}

// delayDB adds a fixed latency to every query, emulating the HTTP round
// trip a real hidden-database client pays.
type delayDB struct {
	db *hidden.DB
	d  time.Duration
}

func (d *delayDB) Query(q query.Q) (hidden.Result, error) {
	time.Sleep(d.d)
	return d.db.Query(q)
}
func (d *delayDB) NumAttrs() int               { return d.db.NumAttrs() }
func (d *delayDB) K() int                      { return d.db.K() }
func (d *delayDB) Cap(i int) hidden.Capability { return d.db.Cap(i) }
func (d *delayDB) Domain(i int) query.Interval { return d.db.Domain(i) }
