// Package bench regenerates every figure of the paper's evaluation
// (Figures 4, 6 and 13-24; the paper has no numbered tables). Each FigNN
// function runs the corresponding experiment end to end — workload
// generation, hidden-interface construction, discovery and baseline runs —
// and returns the same series the paper plots, ready for textual rendering
// or CSV export. The testing.B benchmarks in the repository root and the
// cmd/skybench tool are thin wrappers over this package.
package bench

import (
	"encoding/csv"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"

	"hiddensky/internal/core"
	"hiddensky/internal/skyline"
)

// Config controls experiment scale.
type Config struct {
	// Quick shrinks database sizes so the whole suite finishes in CI
	// time; the full scale reproduces the paper's setup.
	Quick bool
	// Seed drives every generator; runs are deterministic given it.
	Seed int64
	// Parallelism caps the worker sweep of the engine figure (0 = 8).
	Parallelism int
	// CacheEntries bounds the engine figure's query cache (0 = default).
	CacheEntries int
}

// scale returns quick when cfg.Quick, else full.
func (c Config) scale(full, quick int) int {
	if c.Quick {
		return quick
	}
	return full
}

// Point is one x/y sample of a series.
type Point struct {
	X float64
	Y float64
}

// Series is one plotted line.
type Series struct {
	Name   string
	Points []Point
}

// Figure is a regenerated paper figure.
type Figure struct {
	ID     string // "fig13"
	Title  string // what the paper's caption says
	XLabel string
	YLabel string
	Series []Series
	// Notes carries run facts worth recording in EXPERIMENTS.md
	// (skyline sizes, truncated baselines, measured ratios).
	Notes []string
}

// String renders the figure as an aligned text table: one row per distinct
// X, one column per series.
func (f Figure) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s: %s ==\n", f.ID, f.Title)
	xs := map[float64]bool{}
	for _, s := range f.Series {
		for _, p := range s.Points {
			xs[p.X] = true
		}
	}
	sorted := make([]float64, 0, len(xs))
	for x := range xs {
		sorted = append(sorted, x)
	}
	sort.Float64s(sorted)

	header := []string{f.XLabel}
	for _, s := range f.Series {
		header = append(header, s.Name)
	}
	rows := [][]string{header}
	for _, x := range sorted {
		row := []string{trimFloat(x)}
		for _, s := range f.Series {
			cell := "-"
			for _, p := range s.Points {
				if p.X == x {
					cell = trimFloat(p.Y)
					break
				}
			}
			row = append(row, cell)
		}
		rows = append(rows, row)
	}
	writeAligned(&b, rows)
	for _, n := range f.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

// WriteCSV emits the figure as x,series1,series2,... rows.
func (f Figure) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	header := []string{f.XLabel}
	for _, s := range f.Series {
		header = append(header, s.Name)
	}
	if err := cw.Write(header); err != nil {
		return err
	}
	xs := map[float64]bool{}
	for _, s := range f.Series {
		for _, p := range s.Points {
			xs[p.X] = true
		}
	}
	sorted := make([]float64, 0, len(xs))
	for x := range xs {
		sorted = append(sorted, x)
	}
	sort.Float64s(sorted)
	for _, x := range sorted {
		row := []string{trimFloat(x)}
		for _, s := range f.Series {
			cell := ""
			for _, p := range s.Points {
				if p.X == x {
					cell = trimFloat(p.Y)
					break
				}
			}
			row = append(row, cell)
		}
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

func trimFloat(v float64) string {
	if v == float64(int64(v)) && v < 1e15 && v > -1e15 {
		return strconv.FormatInt(int64(v), 10)
	}
	return strconv.FormatFloat(v, 'g', 6, 64)
}

func writeAligned(b *strings.Builder, rows [][]string) {
	if len(rows) == 0 {
		return
	}
	widths := make([]int, len(rows[0]))
	for _, row := range rows {
		for i, cell := range row {
			if len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	for _, row := range rows {
		for i, cell := range row {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(b, "%*s", widths[i], cell)
		}
		b.WriteByte('\n')
	}
}

// Runner regenerates one figure.
type Runner struct {
	ID    string
	Title string
	Run   func(Config) (Figure, error)
}

// All returns every figure runner in paper order.
func All() []Runner {
	return []Runner{
		{"fig4", "Worst vs average cost of SQ-DB-SKY (analytic)", Fig4},
		{"fig6", "SQ vs RQ simulation across skyline sizes", Fig6},
		{"fig13", "Range predicates: impact of k (RQ vs BASELINE)", Fig13},
		{"fig14", "Range predicates: impact of n", Fig14},
		{"fig15", "Range predicates: impact of m", Fig15},
		{"fig16", "Point predicates: impact of n", Fig16},
		{"fig17", "Point predicates: impact of domain size", Fig17},
		{"fig18", "Mixed predicates: impact of n", Fig18},
		{"fig19", "Mixed predicates: varying range and point attributes", Fig19},
		{"fig20", "Anytime property of SQ and RQ-DB-SKY", Fig20},
		{"fig21", "Anytime property of PQ-DB-SKY", Fig21},
		{"fig22", "Online: Blue Nile diamonds (MQ vs BASELINE)", Fig22},
		{"fig23", "Online: Google Flights", Fig23},
		{"fig24", "Online: Yahoo! Autos (MQ vs BASELINE)", Fig24},
		{"engine", "Parallel engine speedup and query-cache dedup (not in the paper)", FigEngine},
		{"answer", "Answer store: band-serving vs full-scan top-k (not in the paper)", FigAnswer},
	}
}

// ByID returns the runner for a figure id ("fig13", "13", "Fig13",
// "engine").
func ByID(id string) (Runner, bool) {
	norm := strings.ToLower(strings.TrimSpace(id))
	for _, r := range All() {
		if r.ID == norm || r.ID == "fig"+norm {
			return r, true
		}
	}
	return Runner{}, false
}

// discoveryCurve converts a discovery trace into the paper's anytime plot:
// point i is (i, queries issued when the i-th tuple of the final skyline
// was first returned). Trace entries that were later displaced by a
// dominator are ignored.
func discoveryCurve(trace []core.TraceEvent, finalSky [][]int) []Point {
	inSky := map[string]bool{}
	for _, t := range finalSky {
		inSky[fmt.Sprint(t)] = true
	}
	seen := map[string]bool{}
	var out []Point
	for _, ev := range trace {
		key := fmt.Sprint(ev.Tuple)
		if !inSky[key] || seen[key] {
			continue
		}
		seen[key] = true
		out = append(out, Point{X: float64(len(out) + 1), Y: float64(ev.Queries)})
	}
	return out
}

// groundSkyline computes the offline skyline of a dataset's tuples.
func groundSkyline(data [][]int) [][]int { return skyline.ComputeTuples(data) }
