package bench

import (
	"fmt"

	"hiddensky/internal/core"
	"hiddensky/internal/datagen"
	"hiddensky/internal/hidden"
)

// fig16Attrs orders the point-predicate attributes used by the PQ and
// mixed experiments (DOT's pre-discretized groups first, then the derived
// groups).
// Distance-vs-taxi and distance-vs-delay are anti-correlated (hub and
// padding effects), so every prefix keeps a healthy Pareto frontier.
var fig16Attrs = []int{
	datagen.FlightDistGroup,
	datagen.FlightTaxiOutGroup,
	datagen.FlightArrDelayGrp,
	datagen.FlightTaxiInGroup,
	datagen.FlightDelayGroup,
}

// Fig16 regenerates Figure 16: PQ-DB-SKY query cost versus database size
// for 3, 4 and 5 point attributes.
func Fig16(cfg Config) (Figure, error) {
	fig := Figure{
		ID:     "fig16",
		Title:  "Point Predicates: Impact of n",
		XLabel: "Number of Tuples",
		YLabel: "Query Cost",
	}
	ns := []int{20000, 40000, 60000, 80000, 100000}
	if cfg.Quick {
		ns = []int{4000, 8000, 16000}
	}
	full := datagen.Flights(cfg.Seed, ns[len(ns)-1])
	for _, m := range []int{3, 4, 5} {
		s := Series{Name: fmt.Sprintf("%dD", m)}
		proj := full.Project(fig16Attrs[:m]...)
		for _, n := range ns {
			d := datagen.Dataset{Name: proj.Name, Attrs: proj.Attrs, Data: proj.Data[:n]}
			res, err := core.Run(d.DB(1, hidden.SumRank{}), core.Request{Algo: core.AlgoPQ}, core.Options{})
			if err != nil {
				return fig, err
			}
			s.Points = append(s.Points, Point{X: float64(n), Y: float64(res.Queries)})
		}
		fig.Series = append(fig.Series, s)
	}
	return fig, nil
}

// Fig17 regenerates Figure 17: PQ-DB-SKY query cost versus attribute
// domain size. For each v the point attributes are truncated to their v
// best values (tuples outside removed), then n tuples are kept.
func Fig17(cfg Config) (Figure, error) {
	fig := Figure{
		ID:     "fig17",
		Title:  "Point Predicates: Impact of Domain Size",
		XLabel: "Attributes Domain",
		YLabel: "Query Cost",
	}
	n := cfg.scale(100000, 10000)
	vs := []int{5, 7, 9, 11, 13, 15}
	if cfg.Quick {
		vs = []int{5, 10, 15}
	}
	// Generate extra tuples so that after truncation n remain.
	full := datagen.Flights(cfg.Seed, n*2)
	s := Series{Name: "PQ-DB-SKY"}
	for _, v := range vs {
		// The paper's protocol over a fixed three-attribute testing
		// database: every attribute whose domain exceeds v is truncated to
		// its v best values (tuples outside removed); narrower attributes
		// stay whole, so the dimensionality is constant across the sweep.
		attrs := []int{datagen.FlightDistGroup, datagen.FlightTaxiOutGroup, datagen.FlightTaxiInGroup}
		d := full.Project(attrs...)
		for col := range attrs {
			if flightPQDomainSize(d, col) > v {
				d = d.TruncateDomain(col, v)
			}
		}
		if len(d.Data) < 50 {
			fig.Notes = append(fig.Notes, fmt.Sprintf("v=%d skipped: only %d tuples survive truncation", v, len(d.Data)))
			continue
		}
		if len(d.Data) > n {
			d = datagen.Dataset{Name: d.Name, Attrs: d.Attrs, Data: d.Data[:n]}
		}
		res, err := core.Run(d.DB(1, hidden.SumRank{}), core.Request{Algo: core.AlgoPQ}, core.Options{})
		if err != nil {
			return fig, err
		}
		s.Points = append(s.Points, Point{X: float64(v), Y: float64(res.Queries)})
		fig.Notes = append(fig.Notes, fmt.Sprintf("v=%d: %d attributes, %d tuples after truncation",
			v, len(attrs), len(d.Data)))
	}
	fig.Series = append(fig.Series, s)
	return fig, nil
}

// flightPQDomainSize returns the value count of attribute a in d.
func flightPQDomainSize(d datagen.Dataset, a int) int {
	lo, hi := d.Data[0][a], d.Data[0][a]
	for _, t := range d.Data {
		if t[a] < lo {
			lo = t[a]
		}
		if t[a] > hi {
			hi = t[a]
		}
	}
	return hi - lo + 1
}

// Fig18 regenerates Figure 18: MQ-DB-SKY query cost versus database size
// on a mixed interface with 3 two-ended range and 2 point attributes.
func Fig18(cfg Config) (Figure, error) {
	fig := Figure{
		ID:     "fig18",
		Title:  "Mixed Predicates: Impact of n",
		XLabel: "Number of Tuples",
		YLabel: "Query Cost",
	}
	ns := []int{20000, 40000, 60000, 80000, 100000}
	if cfg.Quick {
		ns = []int{4000, 8000, 16000}
	}
	cols := []int{
		datagen.FlightDistanceRank, datagen.FlightDepDelay, datagen.FlightArrDelay,
		datagen.FlightDistGroup, datagen.FlightTaxiOutGroup,
	}
	full := datagen.Flights(cfg.Seed, ns[len(ns)-1]).Project(cols...)
	s := Series{Name: "MQ-DB-SKY"}
	for _, n := range ns {
		d := datagen.Dataset{Name: full.Name, Attrs: full.Attrs, Data: full.Data[:n]}
		res, err := core.Run(d.DB(1, hidden.SumRank{}), core.Request{Algo: core.AlgoMQ}, core.Options{})
		if err != nil {
			return fig, err
		}
		s.Points = append(s.Points, Point{X: float64(n), Y: float64(res.Queries)})
	}
	fig.Series = append(fig.Series, s)
	return fig, nil
}

// Fig19 regenerates Figure 19: MQ-DB-SKY query cost when growing the
// number of range attributes (with one point attribute) versus growing the
// number of point attributes (with one range attribute).
func Fig19(cfg Config) (Figure, error) {
	fig := Figure{
		ID:     "fig19",
		Title:  "Mixed Predicates: Varying Range and Point Predicates",
		XLabel: "Number of Attributes",
		YLabel: "Query Cost",
	}
	n := cfg.scale(50000, 8000)
	full := datagen.Flights(cfg.Seed, n)
	// Positively-correlated time attributes: adding one barely grows the
	// skyline, so the range series stays flat while the point series
	// explodes — the paper's contrast.
	rangePool := []int{
		datagen.FlightDepDelay, datagen.FlightArrDelay,
		datagen.FlightTaxiOut, datagen.FlightTaxiIn, datagen.FlightElapsed,
	}
	pointPool := fig16Attrs

	varRange := Series{Name: "Varying Range Predicates"}
	varPoint := Series{Name: "Varying Point Predicates"}
	maxExtra := 5
	if cfg.Quick {
		maxExtra = 4
	}
	for extra := 2; extra <= maxExtra; extra++ {
		// (a) one point attribute, `extra` range attributes.
		cols := append(append([]int(nil), rangePool[:extra]...), pointPool[0])
		d := full.Project(cols...)
		res, err := core.Run(d.DB(1, hidden.SumRank{}), core.Request{Algo: core.AlgoMQ}, core.Options{})
		if err != nil {
			return fig, err
		}
		varRange.Points = append(varRange.Points, Point{X: float64(extra + 1), Y: float64(res.Queries)})

		// (b) one range attribute, `extra` point attributes.
		cols = append([]int{rangePool[0]}, pointPool[:extra]...)
		d = full.Project(cols...)
		res, err = core.Run(d.DB(1, hidden.SumRank{}), core.Request{Algo: core.AlgoMQ}, core.Options{})
		if err != nil {
			return fig, err
		}
		varPoint.Points = append(varPoint.Points, Point{X: float64(extra + 1), Y: float64(res.Queries)})
	}
	fig.Series = append(fig.Series, varPoint, varRange)
	return fig, nil
}

// Fig21 regenerates Figure 21: the anytime curve of PQ-DB-SKY.
func Fig21(cfg Config) (Figure, error) {
	fig := Figure{
		ID:     "fig21",
		Title:  "Anytime Property of PQ-DB-SKY",
		XLabel: "Skyline Discovery Progress",
		YLabel: "Query Cost",
	}
	n := cfg.scale(100000, 10000)
	d := datagen.Flights(cfg.Seed, n).Project(fig16Attrs[:4]...)
	res, err := core.Run(d.DB(1, hidden.SumRank{}), core.Request{Algo: core.AlgoPQ}, core.Options{Trace: true})
	if err != nil {
		return fig, err
	}
	fig.Series = append(fig.Series, Series{
		Name:   "PQ-DB-SKY",
		Points: discoveryCurve(res.Trace, res.Skyline),
	})
	fig.Notes = append(fig.Notes, fmt.Sprintf("n=%d, |S|=%d, total %d queries", n, len(res.Skyline), res.Queries))
	return fig, nil
}
