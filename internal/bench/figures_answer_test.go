package bench

import "testing"

// FigAnswer self-verifies every answer against the full scan; the test
// runs the quick configuration and sanity-checks the series shape.
func TestFigAnswerQuick(t *testing.T) {
	fig, err := FigAnswer(Config{Quick: true, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	if fig.ID != "answer" || len(fig.Series) != 4 {
		t.Fatalf("figure shape: id=%q, %d series", fig.ID, len(fig.Series))
	}
	for _, s := range fig.Series {
		if len(s.Points) != 2 {
			t.Fatalf("series %q has %d points", s.Name, len(s.Points))
		}
		for _, p := range s.Points {
			if p.Y <= 0 {
				t.Fatalf("series %q has non-positive sample at n=%v", s.Name, p.X)
			}
		}
	}
	if len(fig.Notes) == 0 {
		t.Fatal("figure notes missing")
	}
	if _, ok := ByID("answer"); !ok {
		t.Fatal("answer figure not registered")
	}
}

func BenchmarkAnswerFigure(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := FigAnswer(Config{Quick: true, Seed: 42}); err != nil {
			b.Fatal(err)
		}
	}
}
