package bench

import (
	"bytes"
	"strings"
	"testing"

	"hiddensky/internal/core"
)

func TestFigureRendering(t *testing.T) {
	fig := Figure{
		ID:     "figX",
		Title:  "Test",
		XLabel: "x",
		YLabel: "y",
		Series: []Series{
			{Name: "a", Points: []Point{{1, 10}, {2, 20}}},
			{Name: "b", Points: []Point{{2, 5.5}}},
		},
		Notes: []string{"hello"},
	}
	s := fig.String()
	for _, want := range []string{"figX", "x", "a", "b", "10", "5.5", "note: hello"} {
		if !strings.Contains(s, want) {
			t.Errorf("rendered figure missing %q:\n%s", want, s)
		}
	}
	// The series without a point at x=1 renders a dash.
	if !strings.Contains(s, "-") {
		t.Error("missing-point placeholder absent")
	}

	var buf bytes.Buffer
	if err := fig.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 3 { // header + 2 x values
		t.Fatalf("CSV has %d lines: %q", len(lines), buf.String())
	}
	if lines[0] != "x,a,b" {
		t.Errorf("CSV header %q", lines[0])
	}
}

func TestTrimFloat(t *testing.T) {
	if trimFloat(3) != "3" || trimFloat(3.5) != "3.5" {
		t.Error("trimFloat formatting")
	}
}

func TestDiscoveryCurve(t *testing.T) {
	sky := [][]int{{1, 2}, {3, 1}}
	trace := []core.TraceEvent{
		{Queries: 1, Tuple: []int{9, 9}}, // later displaced: not in final skyline
		{Queries: 2, Tuple: []int{1, 2}},
		{Queries: 5, Tuple: []int{1, 2}}, // duplicate: ignored
		{Queries: 7, Tuple: []int{3, 1}},
	}
	curve := discoveryCurve(trace, sky)
	if len(curve) != 2 {
		t.Fatalf("curve has %d points", len(curve))
	}
	if curve[0] != (Point{1, 2}) || curve[1] != (Point{2, 7}) {
		t.Fatalf("curve %v", curve)
	}
}

func TestRegistryTitlesNonEmpty(t *testing.T) {
	for _, r := range All() {
		if r.Title == "" || r.Run == nil {
			t.Errorf("%s: incomplete runner", r.ID)
		}
	}
}

// Quick smoke runs for the fast figures; the rest are covered by the
// root-level benchmarks.
func TestQuickFigures(t *testing.T) {
	if testing.Short() {
		t.Skip("figure smoke tests skipped in -short mode")
	}
	cfg := Config{Quick: true, Seed: 1}
	for _, id := range []string{"fig4", "fig6", "fig13", "fig23"} {
		r, ok := ByID(id)
		if !ok {
			t.Fatalf("missing %s", id)
		}
		fig, err := r.Run(cfg)
		if err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		if len(fig.Series) == 0 {
			t.Fatalf("%s: no series", id)
		}
		for _, s := range fig.Series {
			if len(s.Points) == 0 {
				t.Fatalf("%s: series %q empty", id, s.Name)
			}
		}
	}
}

// Figure 13's claim must hold at any scale: BASELINE costs more than
// RQ-DB-SKY for every k.
func TestFig13BaselineAlwaysWorse(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	fig, err := Fig13(Config{Quick: true, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	var rq, base Series
	for _, s := range fig.Series {
		switch s.Name {
		case "RQ-DB-SKY":
			rq = s
		case "BASELINE":
			base = s
		}
	}
	if len(rq.Points) == 0 || len(base.Points) != len(rq.Points) {
		t.Fatalf("series missing: %+v", fig.Series)
	}
	for i := range rq.Points {
		if base.Points[i].Y <= rq.Points[i].Y {
			t.Errorf("k=%v: BASELINE %v <= RQ %v", rq.Points[i].X, base.Points[i].Y, rq.Points[i].Y)
		}
	}
}

// Figure 4's analytic series must be monotone and ordered (worst >= avg
// for s >= 2).
func TestFig4Shape(t *testing.T) {
	fig, err := Fig4(Config{})
	if err != nil {
		t.Fatal(err)
	}
	if len(fig.Series) != 4 {
		t.Fatalf("want 4 series, got %d", len(fig.Series))
	}
	avg, worst := fig.Series[0], fig.Series[1]
	for i := 1; i < len(avg.Points); i++ {
		if avg.Points[i].Y < avg.Points[i-1].Y {
			t.Error("average cost not monotone")
		}
	}
	for i := 1; i < len(worst.Points); i++ { // s >= 2
		if worst.Points[i].Y < avg.Points[i].Y {
			t.Errorf("worst < average at s=%v", worst.Points[i].X)
		}
	}
}
