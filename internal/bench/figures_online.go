package bench

import (
	"errors"
	"fmt"

	"hiddensky/internal/core"
	"hiddensky/internal/crawl"
	"hiddensky/internal/datagen"
	"hiddensky/internal/hidden"
)

// baselineCap mirrors the paper's online experiments, which discontinued
// BASELINE after 10,000 queries.
const baselineCap = 10000

// onlineComparison runs MQ-DB-SKY (traced) and the capped BASELINE crawl
// over one web database and builds both discovery curves.
func onlineComparison(fig *Figure, d datagen.Dataset, k int, rank hidden.Ranking) error {
	res, err := core.Discover(d.DB(k, rank), core.Options{Trace: true})
	if err != nil {
		return err
	}
	fig.Series = append(fig.Series, Series{
		Name:   "MQ-DB-SKY",
		Points: discoveryCurve(res.Trace, res.Skyline),
	})

	// BASELINE can only claim skyline tuples after a full crawl, but the
	// paper plots when each eventual skyline tuple was first retrieved.
	truth := groundSkyline(d.Data)
	inSky := map[string]bool{}
	for _, t := range truth {
		inSky[fmt.Sprint(t)] = true
	}
	var basePoints []Point
	seen := map[string]bool{}
	cres, err := crawl.Crawl(d.DB(k, rank), crawl.Options{
		MaxQueries: baselineCap,
		OnBatch: func(queries int, tuples [][]int) {
			for _, t := range tuples {
				key := fmt.Sprint(t)
				if inSky[key] && !seen[key] {
					seen[key] = true
					basePoints = append(basePoints, Point{X: float64(len(basePoints) + 1), Y: float64(queries)})
				}
			}
		},
	})
	if err != nil && !errors.Is(err, crawl.ErrBudget) {
		return err
	}
	fig.Series = append(fig.Series, Series{Name: "BASELINE", Points: basePoints})

	perSky := float64(res.Queries) / float64(len(res.Skyline))
	fig.Notes = append(fig.Notes, fmt.Sprintf(
		"%s: |S|=%d; MQ-DB-SKY finished in %d queries (%.1f per skyline tuple)",
		d.Name, len(res.Skyline), res.Queries, perSky))
	fig.Notes = append(fig.Notes, fmt.Sprintf(
		"BASELINE stopped at %d queries having retrieved %d of %d skyline tuples (complete=%v)",
		cres.Queries, len(basePoints), len(truth), cres.Complete))
	return nil
}

// Fig22 regenerates Figure 22: skyline discovery over the Blue Nile
// diamond database (209,666 diamonds, five two-ended range attributes,
// price-ascending ranking, k = 50), MQ-DB-SKY versus BASELINE.
func Fig22(cfg Config) (Figure, error) {
	fig := Figure{
		ID:     "fig22",
		Title:  "Online Experiments: Blue Nile Diamonds",
		XLabel: "Skyline Discovery Process",
		YLabel: "Query Cost",
	}
	n := cfg.scale(209666, 15000)
	d := datagen.BlueNile(cfg.Seed, n)
	err := onlineComparison(&fig, d, 50, hidden.AttrRank{Attr: datagen.DiamondPrice})
	return fig, err
}

// Fig23 regenerates Figure 23: skyline discovery over Google Flights route
// databases — 50 random route/date pairs, SQ on Stops/Price/Connection and
// RQ on DepartureTime, k = 1, average query cost at each discovery rank.
func Fig23(cfg Config) (Figure, error) {
	fig := Figure{
		ID:     "fig23",
		Title:  "Online Experiments: Google Flights",
		XLabel: "Skyline Discovery Progress",
		YLabel: "Average Query Cost",
	}
	routes := cfg.scale(50, 8)
	sums := map[int]float64{} // discovery rank -> summed query cost
	counts := map[int]int{}
	minSky, maxSky, totalQ := 1<<30, 0, 0
	for r := 0; r < routes; r++ {
		d := datagen.GoogleFlightsRoute(cfg.Seed + int64(r))
		// One QPX request returns a page of ~20 itineraries.
		res, err := core.Discover(d.DB(20, hidden.AttrRank{Attr: datagen.GFPrice}), core.Options{Trace: true})
		if err != nil {
			return fig, err
		}
		curve := discoveryCurve(res.Trace, res.Skyline)
		for _, p := range curve {
			i := int(p.X)
			sums[i] += p.Y
			counts[i]++
		}
		if s := len(res.Skyline); s < minSky {
			minSky = s
		}
		if s := len(res.Skyline); s > maxSky {
			maxSky = s
		}
		totalQ += res.Queries
	}
	s := Series{Name: "MQ-DB-SKY"}
	for i := 1; counts[i] > 0; i++ {
		s.Points = append(s.Points, Point{X: float64(i), Y: sums[i] / float64(counts[i])})
	}
	fig.Series = append(fig.Series, s)
	fig.Notes = append(fig.Notes, fmt.Sprintf(
		"%d routes; skyline sizes %d-%d; mean total cost %.1f queries per route (k=20)",
		routes, minSky, maxSky, float64(totalQ)/float64(routes)))
	return fig, nil
}

// Fig24 regenerates Figure 24: skyline discovery over the Yahoo! Autos
// database (125,149 cars over Price, Mileage, Year, k = 50), MQ-DB-SKY
// versus BASELINE.
func Fig24(cfg Config) (Figure, error) {
	fig := Figure{
		ID:     "fig24",
		Title:  "Online Experiments: Yahoo! Autos",
		XLabel: "Skyline Discovery Process",
		YLabel: "Query Cost",
	}
	n := cfg.scale(125149, 15000)
	d := datagen.YahooAutos(cfg.Seed, n)
	err := onlineComparison(&fig, d, 50, hidden.AttrRank{Attr: datagen.AutoPrice})
	return fig, err
}
