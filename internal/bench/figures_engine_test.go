package bench

import (
	"testing"

	"hiddensky/internal/core"
	"hiddensky/internal/datagen"
	"hiddensky/internal/hidden"
	"hiddensky/internal/qcache"
)

// TestEngineFigureReportsDedup: the engine figure must carry the
// queries-issued vs answered-from-cache series, and on its warmed-cache
// workload the dedup ratio is strictly positive.
func TestEngineFigureReportsDedup(t *testing.T) {
	fig, err := FigEngine(Config{Quick: true, Seed: 3, Parallelism: 4})
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]Series{}
	for _, s := range fig.Series {
		byName[s.Name] = s
	}
	issued, ok1 := byName["RQ issued"]
	cachedS, ok2 := byName["RQ from cache"]
	if !ok1 || !ok2 {
		t.Fatalf("figure lacks the issued/from-cache series: %v", fig.Series)
	}
	if len(issued.Points) == 0 || len(issued.Points) != len(cachedS.Points) {
		t.Fatalf("issued/from-cache series mismatch: %d vs %d points", len(issued.Points), len(cachedS.Points))
	}
	for i := range issued.Points {
		if cachedS.Points[i].Y <= 0 {
			t.Fatalf("parallelism %v: nothing answered from cache", issued.Points[i].X)
		}
		if cachedS.Points[i].Y > issued.Points[i].Y {
			t.Fatalf("parallelism %v: more cache answers (%v) than issued queries (%v)",
				issued.Points[i].X, cachedS.Points[i].Y, issued.Points[i].Y)
		}
	}
	if _, ok := ByID("engine"); !ok {
		t.Fatal("engine figure not registered")
	}
}

func engineBenchDB(b *testing.B, caps []hidden.Capability) *hidden.DB {
	b.Helper()
	data := datagen.Independent(2, 3000, 4, 500).Data
	db, err := hidden.New(hidden.Config{Data: data, Caps: caps, K: 10})
	if err != nil {
		b.Fatal(err)
	}
	return db
}

// BenchmarkRQSequential / BenchmarkRQParallel report the wall-clock gain
// of the bounded worker pool on the same discovery (in-memory backend:
// the speedup here reflects pure engine overhead vs. gain; the figure
// adds simulated network latency for the realistic regime).
func BenchmarkRQSequential(b *testing.B) {
	db := engineBenchDB(b, capsOf(4, hidden.RQ))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.RQDBSky(db, core.Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRQParallel(b *testing.B) {
	db := engineBenchDB(b, capsOf(4, hidden.RQ))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.RQDBSky(db, core.Options{Parallelism: 8}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRQCached measures a warm-cache re-run and reports the dedup
// ratio as a metric.
func BenchmarkRQCached(b *testing.B) {
	db := engineBenchDB(b, capsOf(4, hidden.RQ))
	cache := qcache.New(qcache.Config{})
	if _, err := core.RQDBSky(db, core.Options{Cache: cache}); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.RQDBSky(db, core.Options{Cache: cache}); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(cache.Stats().DedupRatio(), "dedup-ratio")
}
