package bench

import (
	"errors"
	"fmt"

	"hiddensky/internal/analysis"
	"hiddensky/internal/core"
	"hiddensky/internal/crawl"
	"hiddensky/internal/datagen"
	"hiddensky/internal/hidden"
)

// fig14Attrs orders the DOT ranking attributes the range experiments draw
// from. The coarse distance group comes first (it anti-correlates mildly
// with the time attributes, keeping the skyline non-degenerate as in the
// real DOT data); the strongly anti-correlated raw Distance comes last, so
// prefix sweeps keep skyline sizes in the band the paper reports.
var fig14Attrs = []int{
	datagen.FlightDistGroup,
	datagen.FlightDepDelay,
	datagen.FlightArrDelay,
	datagen.FlightTaxiOut,
	datagen.FlightTaxiIn,
	datagen.FlightElapsed,
	datagen.FlightAirTime,
	datagen.FlightDelayGroup,
	datagen.FlightDistanceRank,
}

// Fig4 regenerates Figure 4: the analytic worst-case versus average-case
// query cost of SQ-DB-SKY for m = 4 and m = 8, |S| = 1..19.
func Fig4(cfg Config) (Figure, error) {
	fig := Figure{
		ID:     "fig4",
		Title:  "Comparing worst and average cost of SQ-DB-SKY",
		XLabel: "Number of Skylines",
		YLabel: "Query Cost",
	}
	for _, m := range []int{4, 8} {
		avg := Series{Name: fmt.Sprintf("Average Cost (m=%d)", m)}
		worst := Series{Name: fmt.Sprintf("Worst-case Cost (m=%d)", m)}
		for _, p := range analysis.Fig4Series(m, 19) {
			avg.Points = append(avg.Points, Point{X: float64(p.Skylines), Y: p.Average})
			worst.Points = append(worst.Points, Point{X: float64(p.Skylines), Y: p.Worst})
		}
		fig.Series = append(fig.Series, avg, worst)
	}
	return fig, nil
}

// Fig6 regenerates Figure 6: simulated query cost of SQ- versus RQ-DB-SKY
// as the number of skyline tuples grows (controlled through attribute
// correlation), n = 2000, random domination-consistent ranking, k = 1.
func Fig6(cfg Config) (Figure, error) {
	fig := Figure{
		ID:     "fig6",
		Title:  "Simulation results for RQ-DB-SKY, in comparison with SQ-DB-SKY",
		XLabel: "Number of Skylines",
		YLabel: "Query Cost",
	}
	n := cfg.scale(2000, 400)
	corrs := []float64{0.95, 0.8, 0.6, 0.4, 0.2, 0, -0.3, -0.6, -0.9}
	if cfg.Quick {
		corrs = []float64{0.9, 0, -0.9}
	}
	for _, dims := range []struct{ m, domain int }{{4, 8}, {8, 3}} {
		sq := Series{Name: fmt.Sprintf("SQ-DB-SKY (%dD)", dims.m)}
		rq := Series{Name: fmt.Sprintf("RQ-DB-SKY (%dD)", dims.m)}
		for i, corr := range corrs {
			d := datagen.CorrelationSweep(cfg.Seed+int64(i), n, dims.m, dims.domain, corr)
			rank := hidden.RandomExtensionRank{Seed: cfg.Seed + int64(i)}

			sqRes, err := core.Run(d.WithCaps(hidden.SQ).DB(1, rank), core.Request{Algo: core.AlgoSQ}, core.Options{})
			if err != nil {
				return fig, err
			}
			rqRes, err := core.Run(d.WithCaps(hidden.RQ).DB(1, rank), core.Request{Algo: core.AlgoRQ}, core.Options{})
			if err != nil {
				return fig, err
			}
			s := float64(len(rqRes.Skyline))
			sq.Points = append(sq.Points, Point{X: s, Y: float64(sqRes.Queries)})
			rq.Points = append(rq.Points, Point{X: s, Y: float64(rqRes.Queries)})
		}
		fig.Series = append(fig.Series, sq, rq)
	}
	return fig, nil
}

// Fig13 regenerates Figure 13: complete-discovery query cost of RQ-DB-SKY
// versus the crawling BASELINE as the interface's k grows.
func Fig13(cfg Config) (Figure, error) {
	fig := Figure{
		ID:     "fig13",
		Title:  "Range Predicates: Impact of k",
		XLabel: "K",
		YLabel: "Query Cost",
	}
	n := cfg.scale(20000, 2000)
	ks := []int{1, 10, 20, 30, 40, 50}
	if cfg.Quick {
		ks = []int{1, 10, 50}
	}
	d := datagen.Flights(cfg.Seed, n).Project(fig14Attrs[:5]...).WithCaps(hidden.RQ)

	rq := Series{Name: "RQ-DB-SKY"}
	base := Series{Name: "BASELINE"}
	for _, k := range ks {
		res, err := core.Run(d.DB(k, hidden.SumRank{}), core.Request{Algo: core.AlgoRQ}, core.Options{})
		if err != nil {
			return fig, err
		}
		rq.Points = append(rq.Points, Point{X: float64(k), Y: float64(res.Queries)})

		cres, err := crawl.Crawl(d.DB(k, hidden.SumRank{}), crawl.Options{})
		if err != nil {
			return fig, err
		}
		base.Points = append(base.Points, Point{X: float64(k), Y: float64(cres.Queries)})
		if k == ks[len(ks)-1] {
			fig.Notes = append(fig.Notes, fmt.Sprintf(
				"n=%d, |S|=%d; at k=%d RQ-DB-SKY used %d queries vs BASELINE %d (×%.0f)",
				n, len(res.Skyline), k, res.Queries, cres.Queries,
				float64(cres.Queries)/float64(res.Queries)))
		}
	}
	fig.Series = append(fig.Series, rq, base)
	return fig, nil
}

// Fig14 regenerates Figure 14: SQ- and RQ-DB-SKY query cost and the
// skyline size as the database size n grows, plus the average-case
// analytic prediction at the measured skyline sizes.
func Fig14(cfg Config) (Figure, error) {
	fig := Figure{
		ID:     "fig14",
		Title:  "Range Predicates: Impact of n",
		XLabel: "Number of Tuples",
		YLabel: "Query Cost",
	}
	ns := []int{50000, 100000, 150000, 200000, 250000, 300000, 350000, 400000}
	if cfg.Quick {
		ns = []int{5000, 10000, 20000, 40000}
	}
	// Five range attributes keep the skyline in the paper's reported band
	// (|S| grows from ~10 to ~20 over the n sweep).
	const m = 5
	full := datagen.Flights(cfg.Seed, ns[len(ns)-1]).Project(fig14Attrs[:m]...)

	avg := Series{Name: "Average Cost"}
	sq := Series{Name: "SQ-DB-SKY"}
	rq := Series{Name: "RQ-DB-SKY"}
	skySize := Series{Name: "# of Skylines"}
	for _, n := range ns {
		d := datagen.Dataset{Name: full.Name, Attrs: full.Attrs, Data: full.Data[:n]}
		sqRes, err := core.Run(d.WithCaps(hidden.SQ).DB(10, hidden.SumRank{}), core.Request{Algo: core.AlgoSQ}, core.Options{})
		if err != nil {
			return fig, err
		}
		rqRes, err := core.Run(d.WithCaps(hidden.RQ).DB(10, hidden.SumRank{}), core.Request{Algo: core.AlgoRQ}, core.Options{})
		if err != nil {
			return fig, err
		}
		s := len(rqRes.Skyline)
		sq.Points = append(sq.Points, Point{X: float64(n), Y: float64(sqRes.Queries)})
		rq.Points = append(rq.Points, Point{X: float64(n), Y: float64(rqRes.Queries)})
		skySize.Points = append(skySize.Points, Point{X: float64(n), Y: float64(s)})
		avg.Points = append(avg.Points, Point{X: float64(n), Y: analysis.AvgCostRecurrence(m, s)})
	}
	fig.Series = append(fig.Series, avg, sq, rq, skySize)
	return fig, nil
}

// Fig15 regenerates Figure 15: SQ- and RQ-DB-SKY query cost as the number
// of range attributes m grows, with the average-case analytic line.
func Fig15(cfg Config) (Figure, error) {
	fig := Figure{
		ID:     "fig15",
		Title:  "Range Predicates: Impact of m",
		XLabel: "Number of Attributes",
		YLabel: "Query Cost",
	}
	// m stops at 7 (SQ cost ~7x10^5, the same endpoint magnitude as the
	// paper's m=10 plot); beyond that the skyline passes 400 tuples and
	// SQ-DB-SKY's cost becomes astronomically large — the very worst-case
	// behaviour §3.2 analyses.
	n := cfg.scale(20000, 4000)
	maxM := 7
	if cfg.Quick {
		maxM = 5
	}
	full := datagen.Flights(cfg.Seed, n)

	// SQ-DB-SKY's cost grows steeply with |S| at high m (the worst-case
	// analysis at work); cap it like a rate-limited client would and
	// report truncation honestly.
	const sqBudget = 1000000

	avg := Series{Name: "Average Cost"}
	sq := Series{Name: "SQ-DB-SKY"}
	rq := Series{Name: "RQ-DB-SKY"}
	for m := 2; m <= maxM; m++ {
		d := full.Project(fig14Attrs[:m]...)
		sqRes, err := core.Run(d.WithCaps(hidden.SQ).DB(10, hidden.SumRank{}), core.Request{Algo: core.AlgoSQ}, core.Options{MaxQueries: sqBudget})
		if err != nil && !errors.Is(err, core.ErrBudget) {
			return fig, err
		}
		if !sqRes.Complete {
			fig.Notes = append(fig.Notes, fmt.Sprintf("SQ-DB-SKY truncated at %d queries for m=%d", sqBudget, m))
		}
		rqRes, err := core.Run(d.WithCaps(hidden.RQ).DB(10, hidden.SumRank{}), core.Request{Algo: core.AlgoRQ}, core.Options{})
		if err != nil {
			return fig, err
		}
		s := len(rqRes.Skyline)
		sq.Points = append(sq.Points, Point{X: float64(m), Y: float64(sqRes.Queries)})
		rq.Points = append(rq.Points, Point{X: float64(m), Y: float64(rqRes.Queries)})
		avg.Points = append(avg.Points, Point{X: float64(m), Y: analysis.AvgCostRecurrence(m, s)})
	}
	fig.Series = append(fig.Series, avg, sq, rq)
	return fig, nil
}

// Fig20 regenerates Figure 20: the anytime curves of SQ- and RQ-DB-SKY —
// queries issued by the time the i-th skyline tuple is discovered.
func Fig20(cfg Config) (Figure, error) {
	fig := Figure{
		ID:     "fig20",
		Title:  "Anytime Property of SQ and RQ-DB-SKY",
		XLabel: "Skyline Discovery Progress",
		YLabel: "Query Cost",
	}
	// Six attributes: enough skyline overlap for SQ-DB-SKY to re-return
	// tuples, which is exactly the divergence the paper's curves show.
	n := cfg.scale(100000, 10000)
	d := datagen.Flights(cfg.Seed, n).Project(fig14Attrs[:6]...)

	sqRes, err := core.Run(d.WithCaps(hidden.SQ).DB(10, hidden.SumRank{}), core.Request{Algo: core.AlgoSQ}, core.Options{Trace: true})
	if err != nil {
		return fig, err
	}
	rqRes, err := core.Run(d.WithCaps(hidden.RQ).DB(10, hidden.SumRank{}), core.Request{Algo: core.AlgoRQ}, core.Options{Trace: true})
	if err != nil {
		return fig, err
	}
	fig.Series = append(fig.Series,
		Series{Name: "SQ-DB-SKY", Points: discoveryCurve(sqRes.Trace, sqRes.Skyline)},
		Series{Name: "RQ-DB-SKY", Points: discoveryCurve(rqRes.Trace, rqRes.Skyline)},
	)
	fig.Notes = append(fig.Notes, fmt.Sprintf("n=%d, |S|=%d; totals: SQ=%d, RQ=%d queries",
		n, len(rqRes.Skyline), sqRes.Queries, rqRes.Queries))
	return fig, nil
}
